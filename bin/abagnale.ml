(* The abagnale command-line tool.

   Subcommands mirror the pipeline stages:
     collect   — simulate a CCA on the testbed grid and save traces
     classify  — run the Gordon / CCAnalyzer classifiers on saved traces
     synth     — reverse-engineer a cwnd-ack handler from traces
     distance  — score a handler expression against traces
     lint      — run the static-analysis diagnostics over handlers
     simplify  — sound (relational-oracle) simplification + validation
     batch     — crash-safe grid orchestration (run/resume/status/report)
     serve     — long-lived online classifier daemon (line protocol)
     stream    — client for serve: stream trace files, print verdicts
     telemetry — inspect / diff machine-readable telemetry reports
     list      — show the available CCAs and sub-DSLs

   Every pipeline subcommand accepts --telemetry FILE: on completion the
   process's telemetry snapshot (lib/obs) is serialized there as JSON.
   The "counters" section of that document is deterministic for a fixed
   seed — `abagnale telemetry diff` compares it against a baseline, which
   is what the CI telemetry gate runs. ABAGNALE_TELEMETRY=0 disables all
   telemetry recording (the reports then contain only zeros). *)

open Cmdliner

let load_traces paths = List.map Abg_trace.Io.load paths

(* -- shared arguments -- *)

let cca_arg =
  let doc = "Ground-truth CCA name (see `abagnale list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CCA" ~doc)

let trace_files_arg =
  let doc = "Trace files produced by `abagnale collect'." in
  Arg.(non_empty & pos_all file [] & info [] ~docv:"TRACE" ~doc)

let scenarios_arg =
  let doc = "Number of testbed scenarios (RTT x bandwidth grid points)." in
  Arg.(value & opt int 4 & info [ "n"; "scenarios" ] ~doc)

let duration_arg =
  let doc = "Seconds of simulated flow per scenario." in
  Arg.(value & opt float 20.0 & info [ "d"; "duration" ] ~doc)

let dsl_arg =
  let doc =
    "Sub-DSL to search (reno, cubic, delay, vegas, delay-7, delay-11, \
     vegas-11). Default: pick from the classifier hint."
  in
  Arg.(value & opt (some string) None & info [ "dsl" ] ~doc)

let output_dir_arg =
  let doc = "Directory for the collected trace files." in
  Arg.(value & opt string "traces" & info [ "o"; "output" ] ~doc)

let verbose_arg =
  let doc = "Print refinement-loop progress to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let telemetry_arg =
  let doc =
    "Write the process's telemetry snapshot (counters, gauges, span \
     timings) to $(docv) as JSON when the command completes."
  in
  Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)

(* Run a subcommand body, then flush the telemetry report if requested.
   An early [exit] skips the report — a truncated run has no meaningful
   counters to gate on. *)
let with_telemetry path f =
  let result = f () in
  Option.iter Abg_obs.Report.write path;
  result

(* -- collect -- *)

let collect cca_name scenarios duration output_dir telemetry =
  with_telemetry telemetry @@ fun () ->
  match Abg_cca.Registry.find cca_name with
  | None ->
      Printf.eprintf "unknown CCA %s; try `abagnale list'\n" cca_name;
      exit 1
  | Some ctor ->
      if not (Sys.file_exists output_dir) then Sys.mkdir output_dir 0o755;
      let traces =
        Abg_trace.Trace.collect_suite ~duration ~n:scenarios ~name:cca_name ctor
      in
      List.iteri
        (fun i trace ->
          let path =
            Filename.concat output_dir
              (Printf.sprintf "%s-%d.trace" cca_name i)
          in
          Abg_trace.Io.save path trace;
          Printf.printf "%s: %d records, %d losses (%s)\n" path
            (Abg_trace.Trace.length trace)
            (Array.length trace.Abg_trace.Trace.loss_times)
            trace.Abg_trace.Trace.scenario)
        traces

let collect_cmd =
  let info =
    Cmd.info "collect"
      ~doc:"Simulate a CCA on the testbed grid and save its traces"
  in
  Cmd.v info
    Term.(
      const collect $ cca_arg $ scenarios_arg $ duration_arg $ output_dir_arg
      $ telemetry_arg)

(* -- classify -- *)

let classify telemetry trace_files =
  with_telemetry telemetry @@ fun () ->
  let traces = load_traces trace_files in
  let verdict = Abg_classifier.Gordon.classify traces in
  Printf.printf "gordon: %s\n" (Abg_classifier.Gordon.verdict_to_string verdict);
  let result = Abg_classifier.Ccanalyzer.classify traces in
  Printf.printf "ccanalyzer: %s\n"
    (Abg_classifier.Gordon.verdict_to_string result.Abg_classifier.Ccanalyzer.verdict);
  Printf.printf "closest known CCAs:\n";
  List.iteri
    (fun i (name, d) ->
      if i < 5 then Printf.printf "  %-10s %8.2f\n" name d)
    result.Abg_classifier.Ccanalyzer.closest;
  let dsl = Abg_classifier.Dsl_hint.choose verdict in
  Printf.printf "suggested sub-DSL: %s\n" dsl.Abg_dsl.Catalog.name

let classify_cmd =
  let info = Cmd.info "classify" ~doc:"Classify the CCA behind saved traces" in
  Cmd.v info Term.(const classify $ telemetry_arg $ trace_files_arg)

(* -- synth -- *)

let seed_arg =
  let doc =
    "Refinement RNG seed. For a fixed seed and workload the deterministic \
     telemetry counters are bit-stable across runs."
  in
  Arg.(
    value
    & opt int Abg_core.Refinement.default_config.Abg_core.Refinement.seed
    & info [ "seed" ] ~doc)

let synth_cca_arg =
  let doc =
    "Collect the trace suite in-process from this ground-truth CCA (on the \
     -n/-d testbed grid) instead of reading TRACE files."
  in
  Arg.(value & opt (some string) None & info [ "cca" ] ~docv:"CCA" ~doc)

let synth_traces_arg =
  let doc = "Trace files produced by `abagnale collect' (or use --cca)." in
  Arg.(value & pos_all file [] & info [] ~docv:"TRACE" ~doc)

(* The prune/cache summary is read from ONE telemetry snapshot — the same
   counters the refinement loop itself rode on — rather than stitching
   together Trace.store_stats and Refinement.result.pruned, which came
   from two different accounting paths and could disagree mid-refactor. *)
let print_synth_summary (outcome : Abg_core.Synthesis.outcome) =
  Printf.printf "cca:       %s\n" outcome.Abg_core.Synthesis.cca_name;
  Printf.printf "dsl:       %s\n" outcome.Abg_core.Synthesis.dsl_name;
  Printf.printf "handler:   %s\n" outcome.Abg_core.Synthesis.pretty;
  Printf.printf "distance:  %.2f over %d segments\n"
    outcome.Abg_core.Synthesis.distance
    outcome.Abg_core.Synthesis.segments_used;
  let r = outcome.Abg_core.Synthesis.refinement in
  Printf.printf "search:    %d sketches, %d handlers scored, %d buckets\n"
    r.Abg_core.Refinement.total_sketches_scored
    r.Abg_core.Refinement.total_handlers_scored
    r.Abg_core.Refinement.buckets_initial;
  let snap = Abg_obs.Obs.snapshot () in
  let c name = Abg_obs.Report.find_counter snap name in
  let prefix = "enum.pruned." in
  let pruned =
    List.filter_map
      (fun (name, n) ->
        if String.starts_with ~prefix name then
          Some
            ( String.sub name (String.length prefix)
                (String.length name - String.length prefix),
              n )
        else None)
      snap.Abg_obs.Obs.counters
  in
  let total_pruned = List.fold_left (fun acc (_, n) -> acc + n) 0 pruned in
  let enumerated = total_pruned + c "enum.returned" in
  Printf.printf "pruned:    %s (%.1f%% of %d enumerated sketches)\n"
    (String.concat ", "
       (List.map (fun (reason, n) -> Printf.sprintf "%s %d" reason n) pruned))
    (if enumerated = 0 then 0.0
     else 100.0 *. float_of_int total_pruned /. float_of_int enumerated)
    enumerated;
  Printf.printf "cache:     trace store %d hits / %d misses; %d simulations, %d sim events\n"
    (c "trace.store.hits") (c "trace.store.misses") (c "sim.runs")
    (c "sim.events");
  let st = r.Abg_core.Refinement.solver in
  Printf.printf
    "solver:    %d conflicts, %d propagations, %d learnts (%d live), %d DB \
     reductions\n"
    st.Abg_sat.Solver.conflicts st.Abg_sat.Solver.propagations
    st.Abg_sat.Solver.learnts_total st.Abg_sat.Solver.learnts_live
    st.Abg_sat.Solver.db_reductions

let synth dsl_name verbose seed cca scenarios duration telemetry trace_files =
  with_telemetry telemetry @@ fun () ->
  let dsl =
    Option.map
      (fun name ->
        match Abg_dsl.Catalog.find name with
        | Some d -> d
        | None ->
            Printf.eprintf "unknown DSL %s\n" name;
            exit 1)
      dsl_name
  in
  let config =
    {
      Abg_core.Refinement.default_config with
      Abg_core.Refinement.verbose;
      seed;
    }
  in
  let outcome =
    match (cca, trace_files) with
    | Some _, _ :: _ ->
        Printf.eprintf "give trace files or --cca, not both\n";
        exit 1
    | None, [] ->
        Printf.eprintf
          "give trace files or --cca (see `abagnale collect' / `abagnale list')\n";
        exit 1
    | Some cca_name, [] -> (
        match Abg_cca.Registry.find cca_name with
        | None ->
            Printf.eprintf "unknown CCA %s; try `abagnale list'\n" cca_name;
            exit 1
        | Some ctor ->
            Abg_core.Synthesis.collect_and_run ~config ?dsl ~scenarios
              ~duration ~name:cca_name ctor)
    | None, files ->
        let traces = load_traces files in
        let name =
          match traces with
          | t :: _ -> t.Abg_trace.Trace.cca_name
          | [] -> "unknown"
        in
        Abg_core.Abagnale.synthesize ~config ?dsl ~name traces
  in
  match outcome with
  | None ->
      Printf.eprintf "no candidate handler survived scoring\n";
      exit 1
  | Some outcome -> print_synth_summary outcome

let synth_cmd =
  let info =
    Cmd.info "synth"
      ~doc:"Reverse-engineer a cwnd-ack handler expression from traces"
  in
  Cmd.v info
    Term.(
      const synth $ dsl_arg $ verbose_arg $ seed_arg $ synth_cca_arg
      $ scenarios_arg $ duration_arg $ telemetry_arg $ synth_traces_arg)

(* -- distance -- *)

let handler_arg =
  let doc =
    "Handler to score: a name from Table 2 (e.g. reno, bbr) referring to \
     the paper's fine-tuned expression."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"HANDLER" ~doc)

let distance_files_arg =
  let doc = "Trace files to score against." in
  Arg.(non_empty & pos_right 0 file [] & info [] ~docv:"TRACE" ~doc)

let distance handler_name telemetry trace_files =
  with_telemetry telemetry @@ fun () ->
  match Abg_core.Fine_tuned.find_fine_tuned handler_name with
  | None ->
      Printf.eprintf "no fine-tuned handler named %s\n" handler_name;
      exit 1
  | Some handler ->
      let traces = load_traces trace_files in
      Printf.printf "handler:  %s\n" (Abg_dsl.Pretty.num handler);
      Printf.printf "distance: %.2f\n"
        (Abg_core.Abagnale.handler_distance ~handler traces)

let distance_cmd =
  let info =
    Cmd.info "distance" ~doc:"Score a known handler expression against traces"
  in
  Cmd.v info
    Term.(const distance $ handler_arg $ telemetry_arg $ distance_files_arg)

(* -- lint -- *)

let lint_names_arg =
  let doc =
    "Handlers to lint: Table-2 names (e.g. reno, student6), `catalog' for \
     every Table-2 handler, or `showcase' for the built-in rule \
     demonstrations. Default: catalog plus showcase."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"HANDLER" ~doc)

let strict_arg =
  let doc = "Exit non-zero if any error-severity diagnostic is produced." in
  Arg.(value & flag & info [ "strict" ] ~doc)

let lint_format_arg =
  let doc =
    "Output format: `text' (human-readable, default) or `json' (a stable \
     machine-readable document — rule id, severity, span, message, \
     interval witness — suitable for diffing against a committed \
     expectation file in CI)."
  in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FORMAT" ~doc)

(* Hand-rolled JSON emission: no JSON library in the dependency set, and
   the output must be byte-stable for the CI diff. Non-finite interval
   endpoints (JSON has no Infinity/NaN literals) are emitted as the
   strings "inf"/"-inf"; finite floats use %.17g (round-trip exact). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_nan v then "\"nan\""
  else if v = Float.infinity then "\"inf\""
  else if v = Float.neg_infinity then "\"-inf\""
  else Printf.sprintf "%.17g" v

let json_witness = function
  | None -> "null"
  | Some (w : Abg_util.Interval.t) ->
      Printf.sprintf "{\"lo\": %s, \"hi\": %s, \"nan\": %b}"
        (json_float w.Abg_util.Interval.lo)
        (json_float w.Abg_util.Interval.hi)
        w.Abg_util.Interval.nan

(* Shared handler-name resolution for lint and simplify. *)
let resolve_handlers names =
  let showcase =
    List.map (fun (n, e) -> ("showcase/" ^ n, e)) Abg_analysis.Lint.showcase
  in
  let catalog =
    List.map
      (fun (n, e) -> ("synthesized/" ^ n, e))
      Abg_core.Fine_tuned.synthesized
    @ List.map
        (fun (n, e) -> ("fine-tuned/" ^ n, e))
        Abg_core.Fine_tuned.fine_tuned
  in
  match names with
  | [] -> catalog @ showcase
  | names ->
      List.concat_map
        (fun name ->
          if name = "showcase" then showcase
          else if name = "catalog" then catalog
          else begin
            let found =
              List.filter
                (fun (n, _) ->
                  n = name
                  || n = "synthesized/" ^ name
                  || n = "fine-tuned/" ^ name)
                catalog
            in
            if found = [] then begin
              Printf.eprintf "no handler named %s; try `abagnale list'\n"
                name;
              exit 1
            end;
            found
          end)
        names

let lint strict format telemetry names =
  with_telemetry telemetry @@ fun () ->
  let targets = resolve_handlers names in
  let errors = ref 0 and warnings = ref 0 in
  let linted = List.map (fun (name, handler) ->
      let diags = Abg_analysis.Lint.check handler in
      List.iter
        (fun d ->
          match d.Abg_analysis.Lint.severity with
          | Abg_analysis.Lint.Error -> incr errors
          | Abg_analysis.Lint.Warning -> incr warnings
          | Abg_analysis.Lint.Info -> ())
        diags;
      (name, handler, diags))
      targets
  in
  (match format with
  | `Text ->
      List.iter
        (fun (name, handler, diags) ->
          match diags with
          | [] -> ()
          | diags ->
              Printf.printf "%s: %s\n" name (Abg_dsl.Pretty.num handler);
              List.iter
                (fun d ->
                  Printf.printf "  %s\n"
                    (Fmt.str "%a" Abg_analysis.Lint.pp_diag d))
                diags)
        linted;
      Printf.printf "%d handler(s) linted: %d error(s), %d warning(s)\n"
        (List.length targets) !errors !warnings
  | `Json ->
      let diag_json (d : Abg_analysis.Lint.diag) =
        Printf.sprintf
          "      {\"rule\": \"%s\", \"severity\": \"%s\", \"span\": \
           \"%s\", \"message\": \"%s\", \"witness\": %s}"
          (json_escape d.Abg_analysis.Lint.rule)
          (Abg_analysis.Lint.severity_name d.Abg_analysis.Lint.severity)
          (json_escape (Abg_dsl.Pretty.num d.Abg_analysis.Lint.expr))
          (json_escape d.Abg_analysis.Lint.message)
          (json_witness d.Abg_analysis.Lint.witness)
      in
      let handler_json (name, handler, diags) =
        Printf.sprintf
          "  {\"handler\": \"%s\", \"expr\": \"%s\", \"diagnostics\": \
           [%s]}"
          (json_escape name)
          (json_escape (Abg_dsl.Pretty.num handler))
          (match diags with
          | [] -> ""
          | diags ->
              "\n"
              ^ String.concat ",\n" (List.map diag_json diags)
              ^ "\n    ")
      in
      Printf.printf "[\n%s\n]\n"
        (String.concat ",\n" (List.map handler_json linted)));
  if strict && !errors > 0 then exit 1

let lint_cmd =
  let info =
    Cmd.info "lint"
      ~doc:
        "Run the static-analysis diagnostics over handler expressions \
         (rule id, expression, reason, interval witness), including the \
         relational rules (vacuous-guard, guard-implied, \
         branch-equivalent)"
  in
  Cmd.v info
    Term.(
      const lint $ strict_arg $ lint_format_arg $ telemetry_arg
      $ lint_names_arg)

(* -- simplify -- *)

let simplify_validate_arg =
  let doc =
    "Translation validation: run every target handler through the sound \
     (relational-oracle) simplifier and check the rewrite with \
     Equiv.validate_rewrite — a structural/SAT proof where possible, \
     tolerance-checked differential sampling otherwise. Exit non-zero \
     on any validation failure."
  in
  Arg.(value & flag & info [ "validate" ] ~doc)

let simplify_cmd_fn validate telemetry names =
  with_telemetry telemetry @@ fun () ->
  let targets = resolve_handlers names in
  let rel = Abg_analysis.Relint.default () in
  let failures = ref 0 in
  List.iter
    (fun (name, handler) ->
      let rewritten = Abg_analysis.Relint.simplify rel handler in
      if validate then begin
        match
          Abg_analysis.Equiv.validate_rewrite rel ~original:handler
            ~rewritten
        with
        | Ok `Proved ->
            Printf.printf "%s: ok (proved)  %s ~> %s\n" name
              (Abg_dsl.Pretty.num handler)
              (Abg_dsl.Pretty.num rewritten)
        | Ok (`Sampled n) ->
            Printf.printf "%s: ok (%d samples)  %s ~> %s\n" name n
              (Abg_dsl.Pretty.num handler)
              (Abg_dsl.Pretty.num rewritten)
        | Error env ->
            incr failures;
            Printf.printf
              "%s: FAILED  %s ~> %s disagree at cwnd=%g rtt=%g min-rtt=%g \
               acked=%g\n"
              name
              (Abg_dsl.Pretty.num handler)
              (Abg_dsl.Pretty.num rewritten)
              env.Abg_dsl.Env.cwnd env.Abg_dsl.Env.rtt
              env.Abg_dsl.Env.min_rtt env.Abg_dsl.Env.acked_bytes
      end
      else
        Printf.printf "%s: %s ~> %s\n" name
          (Abg_dsl.Pretty.num handler)
          (Abg_dsl.Pretty.num rewritten))
    targets;
  if validate then
    Printf.printf "%d handler(s) validated, %d failure(s)\n"
      (List.length targets) !failures;
  if !failures > 0 then exit 1

let simplify_cmd =
  let info =
    Cmd.info "simplify"
      ~doc:
        "Simplify handler expressions under the sound relational oracle \
         (each cancellation's side condition proven on the signal zone), \
         optionally with per-rewrite translation validation (--validate)"
  in
  Cmd.v info
    Term.(
      const simplify_cmd_fn $ simplify_validate_arg $ telemetry_arg
      $ lint_names_arg)

(* -- telemetry -- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let telemetry_diff baseline_path current_path =
  let baseline = read_file baseline_path and current = read_file current_path in
  match Abg_obs.Report.diff_counters ~baseline ~current with
  | exception Abg_obs.Report.Parse_error msg ->
      Printf.eprintf "telemetry diff: %s\n" msg;
      exit 1
  | [] ->
      let n =
        List.length (Abg_obs.Report.counters_of_json (Abg_obs.Report.parse current))
      in
      Printf.printf "counters agree (%d counters)\n" n
  | drifts ->
      List.iter
        (fun d -> Printf.printf "%s\n" (Abg_obs.Report.pp_drift d))
        drifts;
      Printf.eprintf "telemetry diff: %d counter(s) drifted from baseline\n"
        (List.length drifts);
      exit 1

let telemetry_diff_cmd =
  let baseline_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline telemetry report (JSON).")
  in
  let current_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Telemetry report to check (JSON).")
  in
  let info =
    Cmd.info "diff"
      ~doc:
        "Compare the deterministic counter sections of two telemetry \
         reports; exit 1 on any drift (the CI telemetry gate)"
  in
  Cmd.v info Term.(const telemetry_diff $ baseline_arg $ current_arg)

let telemetry_show path =
  match Abg_obs.Report.(counters_of_json (parse (read_file path))) with
  | exception Abg_obs.Report.Parse_error msg ->
      Printf.eprintf "telemetry show: %s\n" msg;
      exit 1
  | counters ->
      List.iter (fun (name, n) -> Printf.printf "%-40s %d\n" name n) counters

let telemetry_show_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"REPORT" ~doc:"Telemetry report (JSON).")
  in
  let info =
    Cmd.info "show" ~doc:"Print the deterministic counters of a report"
  in
  Cmd.v info Term.(const telemetry_show $ file_arg)

let telemetry_cmd =
  let info =
    Cmd.info "telemetry"
      ~doc:"Inspect and diff machine-readable telemetry reports"
  in
  Cmd.group info [ telemetry_diff_cmd; telemetry_show_cmd ]

(* -- batch -- *)

let batch_dir_arg =
  let doc = "Batch run directory (grid, journal, artifact store)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)

let kinds_arg =
  let doc =
    "Comma-separated job kinds: collect, synth, synth:DSL, classify, \
     noise:STDDEV:KEEP, probe:FAILS:SLEEP_MS."
  in
  Arg.(
    value
    & opt (list string) [ "collect"; "synth"; "classify" ]
    & info [ "kinds" ] ~docv:"KINDS" ~doc)

let ccas_arg =
  let doc = "Comma-separated ground-truth CCAs (see `abagnale list')." in
  Arg.(
    value
    & opt (list string) [ "reno"; "cubic" ]
    & info [ "ccas" ] ~docv:"CCAS" ~doc)

let seeds_arg =
  let doc = "Comma-separated refinement seeds (one job per seed)." in
  Arg.(value & opt (list int) [ 42 ] & info [ "seeds" ] ~docv:"SEEDS" ~doc)

let ack_jitter_arg =
  let doc = "Ack-interarrival jitter stddev for the testbed grid." in
  Arg.(value & opt float 0.001 & info [ "ack-jitter" ] ~doc)

let shard_conv =
  let parse s =
    match String.split_on_char '/' s with
    | [ i; n ] -> (
        match (int_of_string_opt i, int_of_string_opt n) with
        | Some i, Some n when n > 0 && i >= 0 && i < n -> Ok (i, n)
        | _ -> Error (`Msg (Printf.sprintf "bad shard %S (want I/N, 0 <= I < N)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad shard %S (want I/N)" s))
  in
  let print ppf (i, n) = Format.fprintf ppf "%d/%d" i n in
  Arg.conv (parse, print)

let shard_arg =
  let doc =
    "Run only shard $(docv) of the canonical job order (index modulo N); \
     shards are disjoint and their union is the full grid."
  in
  Arg.(value & opt (some shard_conv) None & info [ "shard" ] ~docv:"I/N" ~doc)

let workers_arg =
  let doc =
    "Spawn $(docv) supervised worker processes, each running one slice of \
     the grid into its own journal, and merge their progress into one \
     report. A worker killed mid-run is resumed, not failed."
  in
  Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)

let worker_arg =
  let doc =
    "Run as coordinator worker $(docv): slice I of N (index modulo N), \
     journaling into journal.wIofN.jsonl of a shared run directory. \
     Spawned by --workers; exclusive with --shard."
  in
  Arg.(value & opt (some shard_conv) None & info [ "worker" ] ~docv:"I/N" ~doc)

let flush_window_arg =
  let doc =
    "Group-commit linger in seconds: how long a flush leader waits for \
     concurrently completing jobs to join its fsync."
  in
  Arg.(value & opt float 0.0 & info [ "flush-window" ] ~docv:"SECONDS" ~doc)

let checkpoint_every_arg =
  let doc =
    "Journal lines between checkpoint records (resume/status parse only \
     the lines after the last checkpoint)."
  in
  Arg.(value & opt int 1024 & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let verify_arg =
  let doc =
    "Opt back into full-history verification: replay every journal line \
     (not just the last checkpoint onward) and re-hash every blob read."
  in
  Arg.(value & flag & info [ "verify" ] ~doc)

let retries_arg =
  let doc = "Extra attempts for a failing job before quarantine." in
  Arg.(value & opt int 2 & info [ "retries" ] ~doc)

let timeout_arg =
  let doc = "Per-attempt wall-clock limit in seconds." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let max_jobs_arg =
  let doc = "Stop after completing this many jobs (smoke/testing)." in
  Arg.(value & opt (some int) None & info [ "max-jobs" ] ~docv:"N" ~doc)

let domains_arg =
  let doc = "Domain-pool participation cap for this run." in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let batch_settings ~retries ~timeout ~shard ~worker ~max_jobs ~domains
    ~flush_window ~checkpoint_every ~seed ~verbose =
  {
    Abg_batch.Runner.default_settings with
    Abg_batch.Runner.retries;
    timeout_s = Option.value ~default:infinity timeout;
    shard;
    worker;
    max_jobs;
    num_domains = domains;
    flush_window_s = flush_window;
    checkpoint_every;
    refinement = { Abg_core.Refinement.default_config with seed };
    verbose;
  }

(* Re-invoke this binary as `batch resume DIR --worker i/n`, forwarding
   the knobs that shape execution. Respawn-on-kill is sound because
   resume is: a respawned worker skips everything its journal settled. *)
let run_workers ~dir ~workers ~retries ~timeout ~max_jobs ~domains
    ~flush_window ~checkpoint_every ~seed ~verbose =
  if workers < 1 then begin
    Printf.eprintf "--workers must be >= 1\n";
    exit 1
  end;
  let opt_arg flag fmt = function
    | None -> []
    | Some v -> [ flag; fmt v ]
  in
  let base =
    [ "batch"; "resume"; dir; "--retries"; string_of_int retries ]
    @ opt_arg "--timeout" string_of_float timeout
    @ opt_arg "--max-jobs" string_of_int max_jobs
    @ opt_arg "--domains" string_of_int domains
    @ [
        "--flush-window";
        string_of_float flush_window;
        "--checkpoint-every";
        string_of_int checkpoint_every;
        "--seed";
        string_of_int seed;
      ]
    @ (if verbose then [ "--verbose" ] else [])
  in
  let argv i =
    Array.of_list
      ((Sys.executable_name :: base)
      @ [ "--worker"; Printf.sprintf "%d/%d" i workers ])
  in
  let outcome = Abg_batch.Coordinator.supervise ~argv ~workers () in
  List.iter
    (fun (w, why) ->
      Printf.eprintf "worker %d abandoned after repeated deaths: %s\n" w why)
    outcome.Abg_batch.Coordinator.failed;
  if outcome.Abg_batch.Coordinator.respawns > 0 then
    Printf.printf "workers: %d respawn(s)\n"
      outcome.Abg_batch.Coordinator.respawns;
  print_string (Abg_batch.Report.status dir);
  if outcome.Abg_batch.Coordinator.failed <> [] then exit 1;
  if outcome.Abg_batch.Coordinator.quarantined then exit 2

let print_batch_summary verbose (summary : Abg_batch.Runner.summary) =
  let ok, quarantined =
    List.partition
      (fun (c : Abg_batch.Runner.completion) ->
        match c.Abg_batch.Runner.status with
        | Abg_batch.Runner.Done -> true
        | Abg_batch.Runner.Quarantined _ -> false)
      summary.Abg_batch.Runner.completions
  in
  Printf.printf "completed %d job(s): %d ok, %d quarantined"
    (List.length summary.Abg_batch.Runner.completions)
    (List.length ok) (List.length quarantined);
  if summary.Abg_batch.Runner.skipped > 0 then
    Printf.printf "; %d already journaled" summary.Abg_batch.Runner.skipped;
  if summary.Abg_batch.Runner.remaining > 0 then
    Printf.printf "; %d left for resume" summary.Abg_batch.Runner.remaining;
  print_newline ();
  List.iter
    (fun (c : Abg_batch.Runner.completion) ->
      match c.Abg_batch.Runner.status with
      | Abg_batch.Runner.Quarantined err ->
          Printf.printf "  QUARANTINED %s: %s\n"
            (Abg_batch.Job.describe c.Abg_batch.Runner.job)
            err
      | Abg_batch.Runner.Done -> ())
    summary.Abg_batch.Runner.completions;
  if verbose then
    List.iter
      (fun (name, n) -> Printf.printf "  %-40s +%d\n" name n)
      summary.Abg_batch.Runner.counters;
  if quarantined <> [] then exit 2

let batch_run dir kinds ccas scenarios duration ack_jitter seeds retries
    timeout shard workers max_jobs domains flush_window checkpoint_every seed
    verbose telemetry =
  with_telemetry telemetry @@ fun () ->
  let kinds =
    List.map
      (fun token ->
        match Abg_batch.Job.kind_of_token token with
        | Ok kind -> kind
        | Error msg ->
            Printf.eprintf "%s\n" msg;
            exit 1)
      kinds
  in
  List.iter
    (fun cca ->
      if Abg_cca.Registry.find cca = None then begin
        Printf.eprintf "unknown CCA %s; try `abagnale list'\n" cca;
        exit 1
      end)
    ccas;
  let jobs =
    Abg_batch.Job.expand
      { Abg_batch.Job.kinds; ccas; scenarios; duration; ack_jitter; seeds }
  in
  Printf.printf "grid: %d job(s) -> %s\n" (List.length jobs) dir;
  match workers with
  | Some workers ->
      (* Coordinator mode: persist the grid, then fan execution out to
         supervised child processes. *)
      if shard <> None then begin
        Printf.eprintf "--workers and --shard are exclusive\n";
        exit 1
      end;
      Abg_batch.Runner.init ~dir jobs;
      run_workers ~dir ~workers ~retries ~timeout ~max_jobs ~domains
        ~flush_window ~checkpoint_every ~seed ~verbose
  | None ->
      let settings =
        batch_settings ~retries ~timeout ~shard ~worker:None ~max_jobs
          ~domains ~flush_window ~checkpoint_every ~seed ~verbose
      in
      print_batch_summary verbose (Abg_batch.Runner.run ~dir ~settings jobs)

let batch_run_cmd =
  let info =
    Cmd.info "run"
      ~doc:
        "Expand an experiment grid (kinds x ccas x seeds over the testbed \
         scenarios) into a run directory and execute it, in-process or \
         across supervised --workers"
  in
  Cmd.v info
    Term.(
      const batch_run $ batch_dir_arg $ kinds_arg $ ccas_arg $ scenarios_arg
      $ duration_arg $ ack_jitter_arg $ seeds_arg $ retries_arg $ timeout_arg
      $ shard_arg $ workers_arg $ max_jobs_arg $ domains_arg
      $ flush_window_arg $ checkpoint_every_arg $ seed_arg $ verbose_arg
      $ telemetry_arg)

let batch_resume dir retries timeout shard worker workers max_jobs domains
    flush_window checkpoint_every seed verbose telemetry =
  with_telemetry telemetry @@ fun () ->
  match workers with
  | Some workers ->
      if shard <> None || worker <> None then begin
        Printf.eprintf "--workers is exclusive with --shard/--worker\n";
        exit 1
      end;
      run_workers ~dir ~workers ~retries ~timeout ~max_jobs ~domains
        ~flush_window ~checkpoint_every ~seed ~verbose
  | None ->
      let settings =
        batch_settings ~retries ~timeout ~shard ~worker ~max_jobs ~domains
          ~flush_window ~checkpoint_every ~seed ~verbose
      in
      print_batch_summary verbose (Abg_batch.Runner.resume ~dir ~settings ())

let batch_resume_cmd =
  let info =
    Cmd.info "resume"
      ~doc:
        "Replay a run directory's journals and execute every job without a \
         terminal record (crash recovery; idempotent)"
  in
  Cmd.v info
    Term.(
      const batch_resume $ batch_dir_arg $ retries_arg $ timeout_arg
      $ shard_arg $ worker_arg $ workers_arg $ max_jobs_arg $ domains_arg
      $ flush_window_arg $ checkpoint_every_arg $ seed_arg $ verbose_arg
      $ telemetry_arg)

let batch_status verify dir =
  print_string (Abg_batch.Report.status ~verify dir)

let batch_status_cmd =
  let info =
    Cmd.info "status"
      ~doc:
        "Summarize a run directory's progress (checkpointed fast path; \
         --verify replays and re-hashes everything)"
  in
  Cmd.v info Term.(const batch_status $ verify_arg $ batch_dir_arg)

let batch_report verify dir =
  print_string (Abg_batch.Report.render ~verify dir)

let batch_report_cmd =
  let info =
    Cmd.info "report"
      ~doc:
        "Render the deterministic Table-2-style report of a run directory \
         (a pure function of its grid, journals, and store)"
  in
  Cmd.v info Term.(const batch_report $ verify_arg $ batch_dir_arg)

let batch_gc dir =
  let stats = Abg_batch.Runner.gc ~dir in
  Printf.printf
    "gc: %d live blob(s) kept, %d swept, %d tmp file(s) swept, %d pack(s) \
     folded, %d dir(s) pruned\n"
    stats.Abg_batch.Store.kept stats.Abg_batch.Store.swept
    stats.Abg_batch.Store.tmp_swept stats.Abg_batch.Store.packs_folded
    stats.Abg_batch.Store.dirs_pruned

let batch_gc_cmd =
  let info =
    Cmd.info "gc"
      ~doc:
        "Offline store maintenance: verify and fold pack files into the \
         loose blob tree, sweep blobs no journal references, prune empty \
         directories (must not run concurrently with an executing run)"
  in
  Cmd.v info Term.(const batch_gc $ batch_dir_arg)

let batch_compact dir =
  Abg_batch.Runner.compact ~dir;
  Printf.printf "compacted %d journal(s)\n"
    (List.length (Abg_batch.Runner.journal_paths ~dir))

let batch_compact_cmd =
  let info =
    Cmd.info "compact"
      ~doc:
        "Rewrite each journal as a single checkpoint record covering its \
         settled outcome set (offline; crash-safe via temp-fsync-rename)"
  in
  Cmd.v info Term.(const batch_compact $ batch_dir_arg)

let batch_cmd =
  let info =
    Cmd.info "batch"
      ~doc:
        "Crash-safe batch experiment orchestration: expand a grid, run it \
         with retries and quarantine, resume after a kill, shard across \
         supervised worker processes, garbage-collect, and report"
  in
  Cmd.group info
    [
      batch_run_cmd;
      batch_resume_cmd;
      batch_status_cmd;
      batch_report_cmd;
      batch_gc_cmd;
      batch_compact_cmd;
    ]

(* -- fingerprint -- *)

(* Exhaustively enumerate a sub-DSL's viable sketch space and digest the
   *set* of canonical sketches (sorted, so enumeration order — and hence
   the symmetry-breaking encoding, the solver's heuristics, or the seed
   formula — cannot move it). CI pins the output in
   ci/sketch-fingerprint.txt: any encoding change that grows, shrinks or
   shifts the enumerable space fails the gate, while pure search-order
   or performance changes pass. *)
let fingerprint dsl_name cap =
  let dsl =
    match Abg_dsl.Catalog.find dsl_name with
    | Some d -> d
    | None ->
        Printf.eprintf "unknown DSL %s\n" dsl_name;
        exit 1
  in
  let enc = Abg_enum.Encode.create dsl in
  let rec go acc n =
    if n >= cap then begin
      Printf.eprintf
        "fingerprint: cap of %d sketches reached before exhaustion; raise \
         --cap\n"
        cap;
      exit 1
    end
    else
      match Abg_enum.Encode.next enc with
      | Some sk -> go (Abg_dsl.Pretty.to_string sk :: acc) (n + 1)
      | None -> acc
  in
  let sketches = List.sort String.compare (go [] 0) in
  let digest = Digest.to_hex (Digest.string (String.concat "\n" sketches)) in
  Printf.printf "%s %d %s\n" dsl.Abg_dsl.Catalog.name (List.length sketches)
    digest

let fingerprint_dsl_arg =
  let doc = "Sub-DSL whose sketch space to fingerprint." in
  Arg.(value & pos 0 string "reno" & info [] ~docv:"DSL" ~doc)

let fingerprint_cap_arg =
  let doc = "Abort if exhaustion needs more than this many sketches." in
  Arg.(value & opt int 100_000 & info [ "cap" ] ~doc)

let fingerprint_cmd =
  let info =
    Cmd.info "fingerprint"
      ~doc:
        "Exhaustively enumerate a sub-DSL and print `name count digest' of \
         the canonical sketch set (the CI completeness gate)"
  in
  Cmd.v info Term.(const fingerprint $ fingerprint_dsl_arg $ fingerprint_cap_arg)

(* -- serve / stream -- *)

let socket_arg =
  let doc = "Unix domain socket path to listen on (or connect to)." in
  Arg.(
    value & opt string "abagnale.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc = "Use TCP on 127.0.0.1:$(docv) instead of a Unix socket." in
  Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)

let window_arg =
  let doc = "Sliding-window capacity, in records per flow." in
  Arg.(
    value
    & opt int Abg_serve.Engine.default_config.Abg_serve.Engine.window
    & info [ "window" ] ~doc)

let max_sessions_arg =
  let doc = "Maximum concurrent sessions across all connections." in
  Arg.(
    value
    & opt int Abg_serve.Engine.default_config.Abg_serve.Engine.max_sessions
    & info [ "max-sessions" ] ~doc)

let no_escalate_arg =
  let doc = "Do not synthesize handlers for flows that classify Unknown." in
  Arg.(value & flag & info [ "no-escalate" ] ~doc)

let endpoint_of socket tcp =
  match tcp with
  | Some port -> Abg_serve.Daemon.Tcp port
  | None -> Abg_serve.Daemon.Unix_socket socket

let serve socket tcp window max_sessions no_escalate telemetry =
  with_telemetry telemetry @@ fun () ->
  let escalate =
    if no_escalate then None
    else
      (* Unknown flows go to real synthesis on the pool's background
         lane; the outcome lands in the daemon log. *)
      Some
        (Abg_serve.Escalate.create (fun ~sid trace ->
             match Abg_core.Synthesis.run ~name:sid [ trace ] with
             | Some o ->
                 Printf.printf "escalate %s: synthesized %s (distance %.3f)\n%!"
                   sid o.Abg_core.Synthesis.dsl_name
                   o.Abg_core.Synthesis.distance
             | None ->
                 Printf.printf "escalate %s: synthesis found no handler\n%!"
                   sid))
  in
  let config =
    {
      Abg_serve.Daemon.endpoint = endpoint_of socket tcp;
      engine = { Abg_serve.Engine.window; max_sessions; escalate };
      max_connections = Abg_serve.Daemon.default_config.max_connections;
      log =
        (fun line ->
          print_endline line;
          flush stdout);
    }
  in
  Abg_serve.Daemon.run ~config ()

let serve_cmd =
  let info =
    Cmd.info "serve"
      ~doc:"Run the online classifier daemon (SIGTERM drains cleanly)"
  in
  Cmd.v info
    Term.(
      const serve $ socket_arg $ tcp_arg $ window_arg $ max_sessions_arg
      $ no_escalate_arg $ telemetry_arg)

let json_arg =
  let doc = "Print verdicts as a JSON array instead of raw reply lines." in
  Arg.(value & flag & info [ "json" ] ~doc)

let stream socket tcp json trace_files telemetry =
  with_telemetry telemetry @@ fun () ->
  let flows =
    List.mapi
      (fun i path ->
        let base = Filename.remove_extension (Filename.basename path) in
        (Printf.sprintf "s%d-%s" i base, Abg_trace.Io.load path))
      trace_files
  in
  let lines = Abg_serve.Client.stream (endpoint_of socket tcp) flows in
  if json then begin
    let rows =
      Abg_serve.Client.verdicts lines
      |> List.map (fun (sid, window, distance, verdict) ->
             Abg_batch.Jsonx.Obj
               [
                 ("sid", Abg_batch.Jsonx.Str sid);
                 ("window", Abg_batch.Jsonx.Num (float_of_int window));
                 ("distance", Abg_batch.Jsonx.hex distance);
                 ("verdict", Abg_batch.Jsonx.Str verdict);
               ])
    in
    print_endline (Abg_batch.Jsonx.to_string (Abg_batch.Jsonx.List rows))
  end
  else List.iter print_endline lines

let stream_cmd =
  let info =
    Cmd.info "stream"
      ~doc:
        "Stream trace files to a running serve daemon as concurrent \
         sessions and report the verdicts"
  in
  Cmd.v info
    Term.(
      const stream $ socket_arg $ tcp_arg $ json_arg $ trace_files_arg
      $ telemetry_arg)

(* -- fuzz -- *)

(* Adversarial scenario search (DESIGN.md §12). A fuzz run directory
   holds fuzz.json (the immutable search spec) plus one standard batch
   run directory per generation (gen-0000, gen-0001, ...). There is no
   other on-disk state: populations are re-derived from the seed, so
   resume and report just re-drive the search loop and let the batch
   layer skip every settled evaluation. *)

let fuzz_spec_path dir = Filename.concat dir "fuzz.json"

type fuzz_spec = {
  fz_fitness : Abg_fuzz.Fitness.kind;
  fz_cca : string;
  fz_cca_b : string option;
  fz_handler : string option;  (* codec form; counterexample target *)
  fz_duration : float;  (* simulated seconds per evaluation *)
  fz_params : Abg_fuzz.Search.params;
  fz_synth_scenarios : int;  (* counterexample synthesis grid size *)
  fz_synth_duration : float;
}

let fuzz_spec_to_json s =
  let open Abg_batch.Jsonx in
  let p = s.fz_params in
  Obj
    [
      ("schema", Str "abagnale-fuzz/1");
      ("fitness", Str (Abg_fuzz.Fitness.kind_name s.fz_fitness));
      ("cca", Str s.fz_cca);
      ("cca_b", match s.fz_cca_b with None -> Null | Some c -> Str c);
      ("fn", match s.fz_handler with None -> Null | Some h -> Str h);
      ("duration", hex s.fz_duration);
      ("generations", Num (float_of_int p.Abg_fuzz.Search.generations));
      ("pop", Num (float_of_int p.Abg_fuzz.Search.pop));
      ("seed", Num (float_of_int p.Abg_fuzz.Search.seed));
      ("tournament", Num (float_of_int p.Abg_fuzz.Search.tournament));
      ("elite", Num (float_of_int p.Abg_fuzz.Search.elite));
      ("mutation_rate", hex p.Abg_fuzz.Search.mutation_rate);
      ("synth_scenarios", Num (float_of_int s.fz_synth_scenarios));
      ("synth_duration", hex s.fz_synth_duration);
    ]

let fuzz_spec_of_json json =
  let open Abg_batch.Jsonx in
  let ctx = "fuzz" in
  let fitness_token = str ~ctx (member ~ctx "fitness" json) in
  let fz_fitness =
    match Abg_fuzz.Fitness.kind_of_name fitness_token with
    | Some k -> k
    | None -> raise (Malformed ("fuzz: unknown fitness " ^ fitness_token))
  in
  {
    fz_fitness;
    fz_cca = str ~ctx (member ~ctx "cca" json);
    fz_cca_b =
      (match member ~ctx "cca_b" json with
      | Null -> None
      | j -> Some (str ~ctx j));
    fz_handler =
      (match member ~ctx "fn" json with Null -> None | j -> Some (str ~ctx j));
    fz_duration = hex_float (member ~ctx "duration" json);
    fz_params =
      {
        Abg_fuzz.Search.generations = int ~ctx (member ~ctx "generations" json);
        pop = int ~ctx (member ~ctx "pop" json);
        seed = int ~ctx (member ~ctx "seed" json);
        tournament = int ~ctx (member ~ctx "tournament" json);
        elite = int ~ctx (member ~ctx "elite" json);
        mutation_rate = hex_float (member ~ctx "mutation_rate" json);
      };
    fz_synth_scenarios = int ~ctx (member ~ctx "synth_scenarios" json);
    fz_synth_duration = hex_float (member ~ctx "synth_duration" json);
  }

let rec fuzz_mkdir_p path =
  if not (Sys.file_exists path) then begin
    fuzz_mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.file_exists path -> ()
  end

let write_fuzz_spec dir spec =
  fuzz_mkdir_p dir;
  let path = fuzz_spec_path dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (Abg_batch.Jsonx.to_string (fuzz_spec_to_json spec));
  output_string oc "\n";
  close_out oc;
  Sys.rename tmp path

let read_fuzz_spec dir =
  let path = fuzz_spec_path dir in
  if not (Sys.file_exists path) then begin
    Printf.eprintf "%s: no fuzz run here (missing fuzz.json)\n" dir;
    exit 1
  end;
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  fuzz_spec_of_json (Abg_batch.Jsonx.parse content)

(* The scenario impairment seed is the search seed: one --seed pins the
   entire run. *)
let fuzz_batch_spec spec =
  {
    Abg_batch.Fuzz_batch.fitness = spec.fz_fitness;
    cca = spec.fz_cca;
    cca_b = spec.fz_cca_b;
    handler = spec.fz_handler;
    duration = spec.fz_duration;
    scenario_seed = spec.fz_params.Abg_fuzz.Search.seed;
  }

let fuzz_champion_config spec genome =
  Abg_fuzz.Genome.to_config ~duration:spec.fz_duration
    ~seed:spec.fz_params.Abg_fuzz.Search.seed genome

(* Drive the whole search. Settled generations replay from their
   journals; missing ones execute (in-process, or across --workers by
   initializing the generation grid first and fanning out `batch resume
   GENDIR --worker i/n` children — each generation directory is a
   perfectly ordinary batch run). *)
let fuzz_drive ~dir ~settings ~workers ~retries ~timeout ~domains
    ~flush_window ~checkpoint_every ~verbose spec =
  let bspec = fuzz_batch_spec spec in
  Abg_fuzz.Search.run ~params:spec.fz_params ~evaluate:(fun ~gen genomes ->
      (match workers with
      | None -> ()
      | Some w ->
          let gdir = Abg_batch.Fuzz_batch.gen_dir dir gen in
          if not (Sys.file_exists (Abg_batch.Runner.grid_path gdir)) then begin
            let jobs =
              Array.to_list
                (Array.map (Abg_batch.Fuzz_batch.job_of_genome bspec) genomes)
              |> List.sort_uniq Abg_batch.Job.compare_canonical
            in
            Abg_batch.Runner.init ~dir:gdir jobs
          end;
          run_workers ~dir:gdir ~workers:w ~retries ~timeout ~max_jobs:None
            ~domains ~flush_window ~checkpoint_every
            ~seed:spec.fz_params.Abg_fuzz.Search.seed ~verbose);
      Abg_batch.Fuzz_batch.evaluate ~dir ~settings bspec ~gen genomes)

let fuzz_gene_table genome =
  String.concat "\n"
    (Array.to_list
       (Array.mapi
          (fun i (g : Abg_fuzz.Genome.spec) ->
            Printf.sprintf "    %-16s %.6g" g.Abg_fuzz.Genome.name genome.(i))
          Abg_fuzz.Genome.genes))

(* The §3.2 grid baseline a divergence champion must beat: the same
   fitness evaluated on every testbed_grid scenario (full 25-point
   grid), at the fuzz evaluation duration. *)
let fuzz_grid_baseline spec =
  let bspec =
    {
      Abg_fuzz.Fitness.kind = spec.fz_fitness;
      cca = spec.fz_cca;
      cca_b = spec.fz_cca_b;
      handler = None;
    }
  in
  Abg_netsim.Config.testbed_grid ~duration:spec.fz_duration ~n:25 ()
  |> List.map (fun cfg -> (cfg, Abg_fuzz.Fitness.evaluate bspec cfg))
  |> List.fold_left
       (fun acc (cfg, v) ->
         match acc with
         | Some (_, best) when best >= v -> acc
         | _ -> Some (cfg, v))
       None

(* Counterexample refinement: append the champion scenario to the
   synthesis trace suite and re-run synthesis — the loop the paper's
   pipeline closes with adversarially mined scenarios. *)
let fuzz_refine spec champion_cfg =
  let ctor =
    match Abg_cca.Registry.find spec.fz_cca with
    | Some c -> c
    | None -> failwith ("unknown CCA " ^ spec.fz_cca)
  in
  let configs =
    Abg_netsim.Config.testbed_grid ~duration:spec.fz_synth_duration
      ~n:spec.fz_synth_scenarios ()
    @ [ champion_cfg ]
  in
  let config =
    {
      Abg_core.Refinement.default_config with
      Abg_core.Refinement.seed = spec.fz_params.Abg_fuzz.Search.seed;
    }
  in
  Abg_core.Synthesis.run_configs ~config ~configs ~name:spec.fz_cca ctor

let fuzz_report_doc spec (result : Abg_fuzz.Search.result) =
  let open Abg_batch.Jsonx in
  let champion_cfg = fuzz_champion_config spec result.Abg_fuzz.Search.champion in
  let generations =
    List.map
      (fun (s : Abg_fuzz.Search.gen_stats) ->
        Obj
          [
            ("gen", Num (float_of_int s.Abg_fuzz.Search.gen));
            ("best", hex s.Abg_fuzz.Search.best);
            ("mean", hex s.Abg_fuzz.Search.mean);
            ("fingerprint",
             Str (Abg_fuzz.Genome.fingerprint s.Abg_fuzz.Search.best_genome));
          ])
      result.Abg_fuzz.Search.history
  in
  let champion =
    Obj
      [
        ("fingerprint",
         Str (Abg_fuzz.Genome.fingerprint result.Abg_fuzz.Search.champion));
        ("fitness", hex result.Abg_fuzz.Search.champion_fitness);
        ("gen", Num (float_of_int result.Abg_fuzz.Search.champion_gen));
        ("genome", Str (Abg_fuzz.Genome.encode result.Abg_fuzz.Search.champion));
        ("scenario", Str (Abg_netsim.Config.describe champion_cfg));
        ("config", Str (Abg_netsim.Config.digest champion_cfg));
      ]
  in
  let extras =
    match spec.fz_fitness with
    | Abg_fuzz.Fitness.Divergence -> (
        match fuzz_grid_baseline spec with
        | None -> []
        | Some (grid_cfg, grid_max) ->
            [
              ("grid_max", hex grid_max);
              ("grid_max_scenario",
               Str (Abg_netsim.Config.describe grid_cfg));
              ("exceeds_grid",
               Bool (result.Abg_fuzz.Search.champion_fitness > grid_max));
            ])
    | Abg_fuzz.Fitness.Counterexample -> (
        let refined = fuzz_refine spec champion_cfg in
        match refined with
        | None -> [ ("refined_found", Bool false) ]
        | Some o ->
            let refined_after =
              Abg_fuzz.Fitness.evaluate
                {
                  Abg_fuzz.Fitness.kind = Abg_fuzz.Fitness.Counterexample;
                  cca = spec.fz_cca;
                  cca_b = None;
                  handler = Some o.Abg_core.Synthesis.handler;
                }
                champion_cfg
            in
            [
              ("refined_found", Bool true);
              ("refined_handler", Str o.Abg_core.Synthesis.pretty);
              ("refined_handler_code",
               Str (Abg_fuzz.Codec.encode_num o.Abg_core.Synthesis.handler));
              ("refined_distance", hex o.Abg_core.Synthesis.distance);
              ("champion_distance_before",
               hex result.Abg_fuzz.Search.champion_fitness);
              ("champion_distance_after", hex refined_after);
            ])
    | Abg_fuzz.Fitness.Throughput -> []
  in
  Obj
    ([
       ("schema", Str "abagnale-fuzz-report/1");
       ("spec", fuzz_spec_to_json spec);
       ("generations", List generations);
       ("champion", champion);
     ]
    @ extras)

let fuzz_render_text spec (result : Abg_fuzz.Search.result) doc =
  let open Abg_batch.Jsonx in
  let buf = Buffer.create 2048 in
  let p = spec.fz_params in
  Buffer.add_string buf
    (Printf.sprintf
       "Fuzz report: fitness=%s cca=%s%s pop=%d generations=%d seed=%d \
        duration=%gs\n\n"
       (Abg_fuzz.Fitness.kind_name spec.fz_fitness)
       spec.fz_cca
       (match spec.fz_cca_b with None -> "" | Some b -> "/" ^ b)
       p.Abg_fuzz.Search.pop p.Abg_fuzz.Search.generations
       p.Abg_fuzz.Search.seed spec.fz_duration);
  Buffer.add_string buf "  gen  best          mean          champion\n";
  List.iter
    (fun (s : Abg_fuzz.Search.gen_stats) ->
      Buffer.add_string buf
        (Printf.sprintf "  %3d  %-12.6g  %-12.6g  %s\n" s.Abg_fuzz.Search.gen
           s.Abg_fuzz.Search.best s.Abg_fuzz.Search.mean
           (Abg_fuzz.Genome.fingerprint s.Abg_fuzz.Search.best_genome)))
    result.Abg_fuzz.Search.history;
  let champion_cfg = fuzz_champion_config spec result.Abg_fuzz.Search.champion in
  Buffer.add_string buf
    (Printf.sprintf
       "\nchampion: fitness=%.6g gen=%d fingerprint=%s\n  scenario: %s\n%s\n"
       result.Abg_fuzz.Search.champion_fitness
       result.Abg_fuzz.Search.champion_gen
       (Abg_fuzz.Genome.fingerprint result.Abg_fuzz.Search.champion)
       (Abg_netsim.Config.describe champion_cfg)
       (fuzz_gene_table result.Abg_fuzz.Search.champion));
  let field name =
    match doc with
    | Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  (match (field "grid_max", field "grid_max_scenario") with
  | Some gm, Some (Str sc) ->
      let gm = hex_float gm in
      Buffer.add_string buf
        (Printf.sprintf
           "\ntestbed_grid baseline (25 scenarios): max=%.6g at %s\n\
            champion %s the grid (%.6g vs %.6g)\n"
           gm sc
           (if result.Abg_fuzz.Search.champion_fitness > gm then "EXCEEDS"
            else "does not exceed")
           result.Abg_fuzz.Search.champion_fitness gm)
  | _ -> ());
  (match field "refined_found" with
  | Some (Bool found) ->
      if not found then
        Buffer.add_string buf "\nrefinement: re-synthesis found no handler\n"
      else begin
        let s name = match field name with Some (Str v) -> v | _ -> "?" in
        let h name =
          match field name with Some v -> hex_float v | None -> nan
        in
        Buffer.add_string buf
          (Printf.sprintf
             "\ncounterexample refinement (champion scenario appended to \
              the trace suite):\n\
             \  handler before: %s\n\
             \  handler after:  %s\n\
             \  champion-scenario distance: %.6g -> %.6g\n"
             (match spec.fz_handler with
             | Some hc -> (
                 match Abg_fuzz.Codec.decode_num hc with
                 | Some e -> Abg_dsl.Pretty.num e
                 | None -> hc)
             | None -> "?")
             (s "refined_handler")
             (h "champion_distance_before")
             (h "champion_distance_after"))
      end
  | _ -> ());
  Buffer.contents buf

let fuzz_fitness_arg =
  let doc =
    "Fitness function: divergence (maximize CWND-trace DTW between --cca \
     and --cca-b), counterexample (synthesize a handler for --cca, then \
     maximize its distance from ground truth), or throughput (minimize \
     link utilization of --cca)."
  in
  Arg.(value & opt string "divergence" & info [ "fitness" ] ~docv:"KIND" ~doc)

let fuzz_cca_arg =
  let doc = "CCA under attack (see `abagnale list')." in
  Arg.(value & opt string "reno" & info [ "cca" ] ~docv:"CCA" ~doc)

let fuzz_cca_b_arg =
  let doc = "Second CCA of a divergence pair." in
  Arg.(value & opt string "cubic" & info [ "cca-b" ] ~docv:"CCA" ~doc)

let fuzz_generations_arg =
  let doc = "Number of generations to evolve." in
  Arg.(value & opt int 4 & info [ "generations" ] ~docv:"N" ~doc)

let fuzz_pop_arg =
  let doc = "Population size per generation." in
  Arg.(value & opt int 8 & info [ "pop" ] ~docv:"N" ~doc)

let fuzz_duration_arg =
  let doc = "Simulated seconds per fitness evaluation." in
  Arg.(value & opt float 6.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)

let fuzz_synth_scenarios_arg =
  let doc = "Testbed scenarios in the counterexample synthesis suite." in
  Arg.(value & opt int 2 & info [ "synth-scenarios" ] ~docv:"N" ~doc)

let fuzz_synth_duration_arg =
  let doc = "Simulated seconds per counterexample synthesis trace." in
  Arg.(value & opt float 6.0 & info [ "synth-duration" ] ~docv:"SECONDS" ~doc)

let fuzz_json_arg =
  let doc = "Print the report as canonical JSON (what CI pins)." in
  Arg.(value & flag & info [ "json" ] ~doc)

let fuzz_settings ~retries ~domains ~seed ~verbose =
  batch_settings ~retries ~timeout:None ~shard:None ~worker:None
    ~max_jobs:None ~domains ~flush_window:0.0 ~checkpoint_every:1024 ~seed
    ~verbose

let fuzz_finish ~dir ~settings ~workers ~retries ~domains ~verbose ~json spec
    =
  let result =
    fuzz_drive ~dir ~settings ~workers ~retries ~timeout:None ~domains
      ~flush_window:0.0 ~checkpoint_every:1024 ~verbose spec
  in
  let doc = fuzz_report_doc spec result in
  if json then print_endline (Abg_batch.Jsonx.to_string doc)
  else print_string (fuzz_render_text spec result doc)

let fuzz_run dir fitness cca cca_b generations pop duration synth_scenarios
    synth_duration seed retries domains workers json verbose telemetry =
  with_telemetry telemetry @@ fun () ->
  let fz_fitness =
    match Abg_fuzz.Fitness.kind_of_name fitness with
    | Some k -> k
    | None ->
        Printf.eprintf
          "unknown fitness %s (want divergence, counterexample, or \
           throughput)\n"
          fitness;
        exit 1
  in
  List.iter
    (fun c ->
      if Abg_cca.Registry.find c = None then begin
        Printf.eprintf "unknown CCA %s; try `abagnale list'\n" c;
        exit 1
      end)
    (cca
    :: (match fz_fitness with
       | Abg_fuzz.Fitness.Divergence -> [ cca_b ]
       | _ -> []));
  if Sys.file_exists (fuzz_spec_path dir) then begin
    Printf.eprintf "%s already contains a fuzz run; use `fuzz resume'\n" dir;
    exit 1
  end;
  let settings = fuzz_settings ~retries ~domains ~seed ~verbose in
  (* The counterexample target is synthesized up front and frozen into
     the spec: every generation attacks the same handler. *)
  let fz_handler =
    match fz_fitness with
    | Abg_fuzz.Fitness.Counterexample -> (
        let ctor = Option.get (Abg_cca.Registry.find cca) in
        let config =
          { Abg_core.Refinement.default_config with Abg_core.Refinement.seed }
        in
        let configs =
          Abg_netsim.Config.testbed_grid ~duration:synth_duration
            ~n:synth_scenarios ()
        in
        match Abg_core.Synthesis.run_configs ~config ~configs ~name:cca ctor with
        | Some o ->
            Printf.eprintf "synthesized %s target: %s (distance %.3f)\n%!" cca
              o.Abg_core.Synthesis.pretty o.Abg_core.Synthesis.distance;
            Some (Abg_fuzz.Codec.encode_num o.Abg_core.Synthesis.handler)
        | None ->
            Printf.eprintf
              "counterexample fuzzing needs a synthesized handler, but \
               synthesis found none for %s\n"
              cca;
            exit 1)
    | _ -> None
  in
  let spec =
    {
      fz_fitness;
      fz_cca = cca;
      fz_cca_b =
        (match fz_fitness with
        | Abg_fuzz.Fitness.Divergence -> Some cca_b
        | _ -> None);
      fz_handler;
      fz_duration = duration;
      fz_params =
        {
          Abg_fuzz.Search.default_params with
          Abg_fuzz.Search.generations;
          pop;
          seed;
        };
      fz_synth_scenarios = synth_scenarios;
      fz_synth_duration = synth_duration;
    }
  in
  write_fuzz_spec dir spec;
  fuzz_finish ~dir ~settings ~workers ~retries ~domains ~verbose ~json spec

let fuzz_run_cmd =
  let info =
    Cmd.info "run"
      ~doc:
        "Start a seeded adversarial scenario search: evolve extended \
         netsim scenarios against a fitness function, evaluating each \
         generation as batch jobs under DIR/gen-NNNN"
  in
  Cmd.v info
    Term.(
      const fuzz_run $ batch_dir_arg $ fuzz_fitness_arg $ fuzz_cca_arg
      $ fuzz_cca_b_arg $ fuzz_generations_arg $ fuzz_pop_arg
      $ fuzz_duration_arg $ fuzz_synth_scenarios_arg $ fuzz_synth_duration_arg
      $ seed_arg $ retries_arg $ domains_arg $ workers_arg $ fuzz_json_arg
      $ verbose_arg $ telemetry_arg)

let fuzz_resume dir retries domains workers json verbose telemetry =
  with_telemetry telemetry @@ fun () ->
  let spec = read_fuzz_spec dir in
  let settings =
    fuzz_settings ~retries ~domains ~seed:spec.fz_params.Abg_fuzz.Search.seed
      ~verbose
  in
  fuzz_finish ~dir ~settings ~workers ~retries ~domains ~verbose ~json spec

let fuzz_resume_cmd =
  let info =
    Cmd.info "resume"
      ~doc:
        "Re-drive a fuzz run from its spec: populations re-derive from \
         the seed, settled evaluations replay from the generation \
         journals, and only missing work executes (idempotent)"
  in
  Cmd.v info
    Term.(
      const fuzz_resume $ batch_dir_arg $ retries_arg $ domains_arg
      $ workers_arg $ fuzz_json_arg $ verbose_arg $ telemetry_arg)

let fuzz_report_cmd =
  let info =
    Cmd.info "report"
      ~doc:
        "Render the deterministic fuzz report (per-generation best/mean, \
         champion genome and scenario, grid-baseline comparison or \
         counterexample refinement); completes any unfinished \
         evaluations first, so it equals the report of an uninterrupted \
         run byte for byte"
  in
  Cmd.v info
    Term.(
      const fuzz_resume $ batch_dir_arg $ retries_arg $ domains_arg
      $ workers_arg $ fuzz_json_arg $ verbose_arg $ telemetry_arg)

let fuzz_cmd =
  let info =
    Cmd.info "fuzz"
      ~doc:
        "Adversarial scenario search: a seeded genetic fuzzer over the \
         extended netsim scenario space (cross-traffic, bandwidth steps, \
         outages, reordering, RED), with batch-backed generations"
  in
  Cmd.group info [ fuzz_run_cmd; fuzz_resume_cmd; fuzz_report_cmd ]

(* -- list -- *)

let list_all () =
  Printf.printf "kernel CCAs:  %s\n"
    (String.concat " " (List.map fst Abg_cca.Registry.kernel));
  Printf.printf "student CCAs: %s\n"
    (String.concat " " (List.map fst Abg_cca.Registry.student));
  Printf.printf "sub-DSLs:     %s\n"
    (String.concat " "
       (List.map (fun d -> d.Abg_dsl.Catalog.name) Abg_dsl.Catalog.all))

let list_cmd =
  let info = Cmd.info "list" ~doc:"List available CCAs and sub-DSLs" in
  Cmd.v info Term.(const list_all $ const ())

let main_cmd =
  let doc = "reverse-engineer congestion control algorithm behavior" in
  let info = Cmd.info "abagnale" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      collect_cmd;
      classify_cmd;
      synth_cmd;
      distance_cmd;
      lint_cmd;
      simplify_cmd;
      fingerprint_cmd;
      batch_cmd;
      fuzz_cmd;
      serve_cmd;
      stream_cmd;
      telemetry_cmd;
      list_cmd;
    ]

let () =
  (match Sys.getenv_opt "ABAGNALE_TELEMETRY" with
  | Some ("0" | "off" | "false") -> Abg_obs.Obs.set_enabled false
  | Some _ | None -> ());
  exit (Cmd.eval main_cmd)
