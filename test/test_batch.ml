(* Tests for the batch orchestrator: job serialization, the
   content-addressed store, the journal, and the crash-safe runner's
   determinism contract (killed-and-resumed = uninterrupted). *)

module Job = Abg_batch.Job
module Store = Abg_batch.Store
module Journal = Abg_batch.Journal
module Group_commit = Abg_batch.Group_commit
module Runner = Abg_batch.Runner
module Report = Abg_batch.Report

(* -- scratch directories -- *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "abagnale-batch-test.%d.%d" (Unix.getpid ()) !dir_counter)
  in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm_rf dir;
  Sys.mkdir dir 0o755;
  dir

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* -- Job -- *)

let all_kinds =
  [
    Job.Collect;
    Job.Synthesize { dsl = None };
    Job.Synthesize { dsl = Some "reno" };
    Job.Classify;
    Job.Noise { stddev = 0.05; keep = 0.9 };
    Job.Probe { fail_attempts = 1; sleep_ms = 0 };
  ]

let test_job_json_roundtrip () =
  let configs = Abg_netsim.Config.testbed_grid ~duration:2.0 ~n:2 () in
  List.iter
    (fun kind ->
      let job = { Job.kind; cca = "reno"; seed = 7; configs } in
      let job' = Job.of_json (Job.to_json job) in
      Alcotest.(check string)
        (Job.kind_name kind ^ " digest survives json round-trip")
        (Job.digest job) (Job.digest job');
      Alcotest.(check bool) "configs lossless" true (job.configs = job'.configs))
    all_kinds

let test_job_digest_distinguishes () =
  let configs = Abg_netsim.Config.testbed_grid ~duration:2.0 ~n:1 () in
  let base = { Job.kind = Job.Collect; cca = "reno"; seed = 7; configs } in
  let digests =
    List.map Job.digest
      [
        base;
        { base with Job.cca = "cubic" };
        { base with Job.seed = 8 };
        { base with Job.kind = Job.Classify };
        { base with Job.configs = [] };
      ]
  in
  Alcotest.(check int) "all distinct" 5
    (List.length (List.sort_uniq String.compare digests))

let test_job_expand_counts () =
  let grid =
    {
      Job.kinds =
        [ Job.Collect; Job.Synthesize { dsl = None };
          Job.Noise { stddev = 0.1; keep = 0.8 } ];
      ccas = [ "reno"; "cubic" ];
      scenarios = 2;
      duration = 2.0;
      ack_jitter = 0.001;
      seeds = [ 1; 2; 3 ];
    }
  in
  let jobs = Job.expand grid in
  let count kind_name =
    List.length
      (List.filter (fun j -> Job.kind_name j.Job.kind = kind_name) jobs)
  in
  (* Collect is seed-insensitive: one job per CCA, not per seed. *)
  Alcotest.(check int) "collect jobs" 2 (count "collect");
  Alcotest.(check int) "synth jobs" 6 (count "synth");
  Alcotest.(check int) "noise jobs" 6 (count "noise");
  Alcotest.(check int) "total" 14 (List.length jobs);
  List.iter
    (fun j ->
      Alcotest.(check int) "scenario count"
        (List.length (Abg_netsim.Config.testbed_grid ~duration:2.0 ~n:2 ()))
        (List.length j.Job.configs))
    jobs

let test_job_expand_probe_configless () =
  let jobs =
    Job.expand
      {
        Job.kinds = [ Job.Probe { fail_attempts = 0; sleep_ms = 0 } ];
        ccas = [ "reno" ];
        scenarios = 3;
        duration = 2.0;
        ack_jitter = 0.0;
        seeds = [ 1 ];
      }
  in
  Alcotest.(check int) "one job" 1 (List.length jobs);
  Alcotest.(check int) "no configs" 0 (List.length (List.hd jobs).Job.configs)

let test_job_expand_rejects_empty () =
  let grid =
    {
      Job.kinds = [ Job.Collect ]; ccas = [ "reno" ]; scenarios = 1;
      duration = 2.0; ack_jitter = 0.0; seeds = [ 1 ];
    }
  in
  List.iter
    (fun broken ->
      match Job.expand broken with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")
    [
      { grid with Job.kinds = [] };
      { grid with Job.ccas = [] };
      { grid with Job.seeds = [] };
    ]

let test_job_kind_tokens () =
  let ok token expected =
    match Job.kind_of_token token with
    | Ok kind -> Alcotest.(check bool) token true (kind = expected)
    | Error msg -> Alcotest.fail msg
  in
  ok "collect" Job.Collect;
  ok "synth" (Job.Synthesize { dsl = None });
  ok "synth:cubic" (Job.Synthesize { dsl = Some "cubic" });
  ok "classify" Job.Classify;
  ok "noise:0.1:0.9" (Job.Noise { stddev = 0.1; keep = 0.9 });
  ok "probe:2:10" (Job.Probe { fail_attempts = 2; sleep_ms = 10 });
  List.iter
    (fun bad ->
      match Job.kind_of_token bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted " ^ bad))
    [ "nonsense"; "noise:x:y"; "probe:1"; "noise:0.1" ]

(* -- Store -- *)

let test_store_put_get () =
  let store = Store.open_ (Filename.concat (fresh_dir ()) "store") in
  let d1 = Store.put store "hello" in
  let d2 = Store.put store "hello" in
  Alcotest.(check string) "idempotent" d1 d2;
  Alcotest.(check string) "digest is content hash"
    (Store.digest_hex "hello") d1;
  Alcotest.(check string) "round-trip" "hello" (Store.get store d1);
  Alcotest.(check bool) "mem" true (Store.mem store d1);
  Alcotest.(check bool) "not mem" false
    (Store.mem store (Store.digest_hex "other"));
  let d3 = Store.put store "world" in
  Alcotest.(check (list string)) "list sorted"
    (List.sort String.compare [ d1; d3 ])
    (Store.list store)

let test_store_get_missing () =
  let store = Store.open_ (Filename.concat (fresh_dir ()) "store") in
  match Store.get store (Store.digest_hex "absent") with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_store_detects_corruption () =
  let root = Filename.concat (fresh_dir ()) "store" in
  let store = Store.open_ root in
  let d = Store.put store "payload" in
  let path =
    Filename.concat (Filename.concat (Filename.concat root "blobs")
                       (String.sub d 0 2)) d
  in
  write_file path "tampered";
  match Store.get store d with
  | exception Store.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt"

let test_store_detects_manifest_mismatch () =
  let root = Filename.concat (fresh_dir ()) "store" in
  ignore (Store.open_ root);
  write_file (Filename.concat root "manifest.json")
    "{\"schema\":\"something-else/9\"}\n";
  match Store.open_ root with
  | exception Store.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt"

let test_store_sweeps_tmp () =
  let root = Filename.concat (fresh_dir ()) "store" in
  ignore (Store.open_ root);
  let tmp name = Filename.concat (Filename.concat root "tmp") name in
  (* Pid 4194303 is the top of the default pid space — dead in practice;
     our own pid marks a previous incarnation of this process. The
     parent's pid is a live process that is not us: a coordinator
     sibling mid-put, whose tmp file must survive the sweep. *)
  let dead = tmp "blob.4194303.1" in
  let own = tmp (Printf.sprintf "blob.%d.9" (Unix.getpid ())) in
  let sibling = tmp (Printf.sprintf "blob.%d.1" (Unix.getppid ())) in
  let unparseable = tmp "junk" in
  List.iter (fun p -> write_file p "half-written") [ dead; own; sibling; unparseable ];
  ignore (Store.open_ root);
  Alcotest.(check bool) "dead pid swept" false (Sys.file_exists dead);
  Alcotest.(check bool) "own pid swept" false (Sys.file_exists own);
  Alcotest.(check bool) "unparseable swept" false (Sys.file_exists unparseable);
  Alcotest.(check bool) "live sibling kept" true (Sys.file_exists sibling)

let test_store_deferred_flush_and_close () =
  let root = Filename.concat (fresh_dir ()) "store" in
  let s = Store.open_ ~deferred:true root in
  let d = Store.put s "alpha" in
  Alcotest.(check string) "staged blob readable" "alpha" (Store.get s d);
  Alcotest.(check bool) "staged blob mem" true (Store.mem s d);
  Alcotest.(check (list string)) "nothing loose before flush" []
    (Store.list s);
  Alcotest.(check int) "one blob flushed" 1 (Store.flush_staged s);
  Alcotest.(check int) "flush idempotent" 0 (Store.flush_staged s);
  Alcotest.(check string) "flushed blob readable from pack" "alpha"
    (Store.get s d);
  let d2 = Store.put s "beta" in
  Store.close s;
  (* close flushes the stragglers and materializes the loose tree. *)
  Alcotest.(check (list string)) "loose tree complete after close"
    (List.sort String.compare [ d; d2 ])
    (Store.list s);
  let reopened = Store.open_ root in
  Alcotest.(check string) "survives reopen" "beta" (Store.get reopened d2)

let test_store_pack_recovery () =
  let root = Filename.concat (fresh_dir ()) "store" in
  let s = Store.open_ ~deferred:true root in
  let d = Store.put s "durable-but-not-closed" in
  ignore (Store.flush_staged s);
  (* Crash before close: no loose blobs exist. A fresh open must
     re-materialize them from the pack. *)
  let reopened = Store.open_ root in
  Alcotest.(check (list string)) "recovered from pack" [ d ]
    (Store.list reopened);
  Alcotest.(check string) "content intact" "durable-but-not-closed"
    (Store.get reopened d)

let test_store_torn_pack_tail () =
  let root = Filename.concat (fresh_dir ()) "store" in
  let s = Store.open_ ~deferred:true root in
  let d = Store.put s "committed" in
  ignore (Store.flush_staged s);
  (* Kill mid-append: a torn record fragment after the valid prefix. *)
  let pack =
    Filename.concat (Filename.concat root "pack")
      (Printf.sprintf "%d.pack" (Unix.getpid ()))
  in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 pack in
  output_string oc "{\"blob\":\"ffffffffffffffffffffffffffffffff\",\"bytes\":9999}\ntrunc";
  close_out oc;
  let reopened = Store.open_ root in
  Alcotest.(check (list string)) "only the committed blob" [ d ]
    (Store.list reopened);
  Alcotest.(check string) "committed blob intact" "committed"
    (Store.get reopened d)

let test_store_gc () =
  let root = Filename.concat (fresh_dir ()) "store" in
  let s = Store.open_ ~deferred:true root in
  let live = Store.put s "keep me" in
  let dead = Store.put s "sweep me" in
  ignore (Store.flush_staged s);
  Store.close s;
  (match Store.gc s ~live:(fun _ -> true) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "gc on a deferred store must be refused");
  let offline = Store.open_ root in
  let stats = Store.gc offline ~live:(String.equal live) in
  Alcotest.(check int) "kept" 1 stats.Store.kept;
  Alcotest.(check int) "swept" 1 stats.Store.swept;
  Alcotest.(check bool) "pack folded" true (stats.Store.packs_folded >= 1);
  Alcotest.(check (list string)) "canonical listing" [ live ]
    (Store.list offline);
  Alcotest.(check string) "live blob verified in place" "keep me"
    (Store.get offline live);
  Alcotest.(check (array string)) "pack dir emptied" [||]
    (Sys.readdir (Filename.concat root "pack"));
  Alcotest.(check bool) "dead blob gone" false (Store.mem offline dead)

(* -- Journal -- *)

let sample_entries =
  [
    {
      Journal.job = "aaaa"; status = Journal.Ok; attempts = 1;
      result = Some "bbbb"; error = None;
    };
    {
      Journal.job = "cccc"; status = Journal.Quarantined; attempts = 3;
      result = None; error = Some "Failure(\"boom\")";
    };
  ]

let test_journal_line_roundtrip () =
  List.iter
    (fun e ->
      let e' = Journal.entry_of_line (Journal.entry_to_line e) in
      Alcotest.(check string) "line stable" (Journal.entry_to_line e)
        (Journal.entry_to_line e'))
    sample_entries

let test_journal_append_replay () =
  let path = Filename.concat (fresh_dir ()) "journal.jsonl" in
  let j = Journal.open_ path in
  List.iter (Journal.append j) sample_entries;
  Journal.close j;
  let replayed = Journal.replay path in
  Alcotest.(check (list string)) "entries survive"
    (List.map Journal.entry_to_line sample_entries)
    (List.map Journal.entry_to_line replayed)

let test_journal_missing_is_empty () =
  Alcotest.(check int) "no file, no entries" 0
    (List.length (Journal.replay (Filename.concat (fresh_dir ()) "nope")))

let test_journal_drops_torn_tail () =
  let path = Filename.concat (fresh_dir ()) "journal.jsonl" in
  let j = Journal.open_ path in
  List.iter (Journal.append j) sample_entries;
  Journal.close j;
  (* Simulate a crash mid-append: a final line with no newline. *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "{\"job\":\"dddd\",\"status\":\"ok\"";
  close_out oc;
  let replayed = Journal.replay path in
  Alcotest.(check int) "torn tail dropped" (List.length sample_entries)
    (List.length replayed)

let test_journal_interior_corruption_raises () =
  let path = Filename.concat (fresh_dir ()) "journal.jsonl" in
  write_file path "garbage, not json\n{\"also\":\"bad\"}\n";
  match Journal.replay path with
  | exception Abg_batch.Jsonx.Malformed _ -> ()
  | _ -> Alcotest.fail "expected Malformed"

(* -- Journal checkpoints -- *)

let dig i = Digest.to_hex (Digest.string (string_of_int i))

let mk_entry ?(status = Journal.Ok) ?(attempts = 1) i =
  match status with
  | Journal.Ok ->
      { Journal.job = dig i; status; attempts;
        result = Some (dig (100000 + i)); error = None }
  | Journal.Quarantined ->
      { Journal.job = dig i; status; attempts; result = None;
        error = Some (Printf.sprintf "Failure(\"boom %d\")" i) }

let lines_of entries =
  List.sort String.compare (List.map Journal.entry_to_line entries)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A valid checkpoint record for [entries], obtained through the public
   API via a scratch journal. *)
let checkpoint_line_for entries =
  let path = Filename.concat (fresh_dir ()) "scratch.jsonl" in
  let j = Journal.open_ path in
  Journal.append_checkpoint j entries;
  Journal.close j;
  String.trim (read_file path)

(* Flip one hex digit of the record's integrity hash: still canonical
   JSON, still carries the checkpoint prefix, but fails verification. *)
let corrupt_checkpoint line =
  let marker = "\"hash\":\"" in
  let rec find i =
    if i + String.length marker > String.length line then
      Alcotest.fail "no hash field in checkpoint line"
    else if String.sub line i (String.length marker) = marker then
      i + String.length marker
    else find (i + 1)
  in
  let at = find 0 in
  let b = Bytes.of_string line in
  Bytes.set b at (if line.[at] = '0' then '1' else '0');
  Bytes.to_string b

let append_raw path s =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

let test_journal_checkpoint_roundtrip () =
  let path = Filename.concat (fresh_dir ()) "journal.jsonl" in
  let early = List.init 5 mk_entry in
  let late =
    List.init 3 (fun i -> mk_entry ~status:Journal.Quarantined ~attempts:3 (50 + i))
  in
  let j = Journal.open_ path in
  Journal.append_batch j early;
  Journal.append_checkpoint j early;
  Journal.append_batch j late;
  Journal.close j;
  let all = early @ late in
  Alcotest.(check (list string)) "full replay sees through checkpoint"
    (lines_of all) (lines_of (Journal.replay path));
  Alcotest.(check (list string)) "checkpointed replay agrees"
    (lines_of all) (lines_of (Journal.replay_checkpointed path))

let test_journal_torn_checkpoint_falls_back () =
  let build () =
    let path = Filename.concat (fresh_dir ()) "journal.jsonl" in
    let early = List.init 4 mk_entry in
    let late = List.init 4 (fun i -> mk_entry (50 + i)) in
    let j = Journal.open_ path in
    Journal.append_batch j early;
    Journal.append_checkpoint j early;
    Journal.append_batch j late;
    Journal.close j;
    (path, early @ late)
  in
  (* A kill mid-checkpoint-append leaves a torn (newline-less) record:
     both readers ignore it; the fast one falls back to the previous
     checkpoint. *)
  let path, all = build () in
  let cp = checkpoint_line_for all in
  append_raw path (String.sub cp 0 (String.length cp / 2));
  Alcotest.(check (list string)) "replay ignores torn checkpoint"
    (lines_of all) (lines_of (Journal.replay path));
  Alcotest.(check (list string)) "checkpointed replay falls back"
    (lines_of all) (lines_of (Journal.replay_checkpointed path));
  (* A complete-but-corrupt final record (bad hash) likewise. *)
  let path, all = build () in
  append_raw path (corrupt_checkpoint (checkpoint_line_for all) ^ "\n");
  Alcotest.(check (list string)) "replay drops invalid final checkpoint"
    (lines_of all) (lines_of (Journal.replay path));
  Alcotest.(check (list string)) "checkpointed replay falls back past it"
    (lines_of all) (lines_of (Journal.replay_checkpointed path))

let test_journal_interior_checkpoint_corruption_raises () =
  let path = Filename.concat (fresh_dir ()) "journal.jsonl" in
  let early = List.init 3 mk_entry in
  let j = Journal.open_ path in
  Journal.append_batch j early;
  Journal.close j;
  append_raw path (corrupt_checkpoint (checkpoint_line_for early) ^ "\n");
  append_raw path (Journal.entry_to_line (mk_entry 50) ^ "\n");
  (* Not in final position, so not a crash artifact: corruption. *)
  match Journal.replay path with
  | exception Abg_batch.Jsonx.Malformed _ -> ()
  | _ -> Alcotest.fail "expected Malformed"

let test_journal_compact () =
  let path = Filename.concat (fresh_dir ()) "journal.jsonl" in
  let entries = List.init 10 mk_entry in
  let j = Journal.open_ path in
  Journal.append_batch j entries;
  Journal.append_checkpoint j entries;
  Journal.close j;
  Journal.compact path;
  Alcotest.(check int) "compacted to one line" 1
    (List.length (String.split_on_char '\n' (String.trim (read_file path))));
  Alcotest.(check (list string)) "outcome set survives compaction"
    (lines_of entries) (lines_of (Journal.replay path));
  Alcotest.(check (list string)) "fast path agrees"
    (lines_of entries) (lines_of (Journal.replay_checkpointed path));
  (* The compacted journal is still an appendable journal. *)
  let extra = mk_entry 999 in
  let j = Journal.open_ path in
  Journal.append j extra;
  Journal.close j;
  Alcotest.(check (list string)) "append after compact"
    (lines_of (extra :: entries))
    (lines_of (Journal.replay path));
  (* Compacting a missing journal leaves it missing. *)
  let absent = Filename.concat (fresh_dir ()) "absent.jsonl" in
  Journal.compact absent;
  Alcotest.(check bool) "missing stays missing" false (Sys.file_exists absent)

let test_journal_compact_interrupted () =
  let path = Filename.concat (fresh_dir ()) "journal.jsonl" in
  let entries = List.init 6 mk_entry in
  let j = Journal.open_ path in
  Journal.append_batch j entries;
  Journal.close j;
  (* Kill before the rename: a half-written tmp next to the intact
     journal. Readers never look at the tmp; a retry overwrites it. *)
  write_file (path ^ ".compact") "half-written checkpoint record";
  Alcotest.(check (list string)) "journal unaffected by stale tmp"
    (lines_of entries) (lines_of (Journal.replay path));
  Journal.compact path;
  Alcotest.(check bool) "retry consumes the tmp" false
    (Sys.file_exists (path ^ ".compact"));
  Alcotest.(check (list string)) "retry compacts correctly"
    (lines_of entries) (lines_of (Journal.replay_checkpointed path))

(* Property: for any interleaving of outcome batches and checkpoint
   records — with any of the crash artifacts a SIGKILL can leave at the
   tail — the fast checkpointed reader and the full verifying reader
   agree on the outcome set, and it is exactly the set appended. *)
let replay_equivalence_prop (sizes_cps, statuses, tail_kind) =
  let path = Filename.concat (fresh_dir ()) "journal.jsonl" in
  let j = Journal.open_ path in
  let statuses = ref statuses in
  let next_status () =
    match !statuses with
    | [] -> Journal.Ok
    | s :: rest ->
        statuses := rest;
        if s then Journal.Ok else Journal.Quarantined
  in
  let counter = ref 0 in
  let settled = ref [] in
  List.iter
    (fun (size, checkpoint_after) ->
      let chunk =
        List.init size (fun _ ->
            incr counter;
            mk_entry ~status:(next_status ()) ~attempts:(1 + (!counter mod 4))
              !counter)
      in
      Journal.append_batch j chunk;
      settled := !settled @ chunk;
      if checkpoint_after then Journal.append_checkpoint j !settled)
    sizes_cps;
  Journal.close j;
  let all = !settled in
  (match tail_kind with
  | 0 -> () (* clean shutdown *)
  | 1 -> append_raw path "{\"job\":\"0123456789abcdef0123456789abcdef\",\"st"
  | 2 ->
      let cp = checkpoint_line_for all in
      append_raw path (String.sub cp 0 (max 1 (String.length cp / 2)))
  | _ -> append_raw path (corrupt_checkpoint (checkpoint_line_for all) ^ "\n"));
  let expected = lines_of all in
  expected = lines_of (Journal.replay path)
  && expected = lines_of (Journal.replay_checkpointed path)

let qcheck_replay_equivalence =
  let gen =
    QCheck.Gen.(
      triple
        (list_size (int_range 0 6) (pair (int_range 0 8) bool))
        (list_size (int_range 0 48) bool)
        (int_range 0 3))
  in
  QCheck.Test.make ~name:"checkpointed replay = full replay" ~count:100
    (QCheck.make gen) replay_equivalence_prop

(* -- Group commit -- *)

let test_group_commit_flush_and_checkpoint () =
  let dir = fresh_dir () in
  let store = Store.open_ ~deferred:true (Filename.concat dir "store") in
  let jpath = Filename.concat dir "journal.jsonl" in
  let journal = Journal.open_ jpath in
  let commit =
    Group_commit.create ~checkpoint_every:4 ~store ~journal ~initial:[] ()
  in
  let entries =
    List.init 6 (fun i ->
        let blob = Store.put store (Printf.sprintf "result %d" i) in
        { (mk_entry i) with Journal.result = Some blob })
  in
  List.iteri
    (fun i e ->
      Group_commit.commit commit e;
      (* The durability-window invariant: once commit returns, the
         journal line and every blob it references are on disk. *)
      let on_disk = lines_of (Journal.replay_checkpointed jpath) in
      Alcotest.(check bool)
        (Printf.sprintf "entry %d durable at commit return" i)
        true
        (List.mem (Journal.entry_to_line e) on_disk))
    entries;
  Group_commit.close commit;
  Journal.close journal;
  Store.close store;
  Alcotest.(check (list string)) "all entries settled"
    (lines_of entries) (lines_of (Journal.replay jpath));
  Alcotest.(check bool) "checkpoint record written" true
    (contains ~affix:"{\"checkpoint\":" (read_file jpath));
  let reopened = Store.open_ (Filename.concat dir "store") in
  List.iter
    (fun (e : Journal.entry) ->
      Alcotest.(check bool) "result blob durable" true
        (Store.mem reopened (Option.get e.Journal.result)))
    entries

(* -- Runner -- *)

let quiet_settings =
  {
    Runner.default_settings with
    Runner.backoff_s = 0.0;
    num_domains = Some 2;
  }

let probe_job ?(fail_attempts = 0) ?(sleep_ms = 0) ~seed cca =
  { Job.kind = Job.Probe { fail_attempts; sleep_ms }; cca; seed; configs = [] }

let collect_job cca =
  {
    Job.kind = Job.Collect;
    cca;
    seed = 42;
    configs = Abg_netsim.Config.testbed_grid ~duration:2.0 ~n:1 ();
  }

let smoke_jobs =
  [
    collect_job "reno";
    probe_job ~seed:1 "reno";
    probe_job ~fail_attempts:1 ~seed:2 "reno";
    probe_job ~seed:3 "cubic";
  ]

let settled_lines dir =
  Journal.replay (Filename.concat dir "journal.jsonl")
  |> List.map Journal.entry_to_line
  |> List.sort String.compare

let store_blobs dir =
  let store = Store.open_ (Filename.concat dir "store") in
  List.map (fun d -> (d, Store.get store d)) (Store.list store)

let test_runner_kill_and_resume_deterministic () =
  (* Uninterrupted reference run. *)
  let uninterrupted = fresh_dir () in
  let summary = Runner.run ~dir:uninterrupted ~settings:quiet_settings smoke_jobs in
  Alcotest.(check int) "all completed" (List.length smoke_jobs)
    (List.length summary.Runner.completions);
  (* "Killed" run: stop after 2 jobs, then fake the crash artifacts a
     SIGKILL can leave — a torn journal line and a half-written tmp blob. *)
  let killed = fresh_dir () in
  let partial =
    Runner.run ~dir:killed
      ~settings:{ quiet_settings with Runner.max_jobs = Some 2 }
      smoke_jobs
  in
  Alcotest.(check int) "partial stopped early" 2
    (List.length partial.Runner.completions);
  Alcotest.(check int) "partial remaining" 2 partial.Runner.remaining;
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644
      (Filename.concat killed "journal.jsonl")
  in
  output_string oc "{\"job\":\"0123456789abcdef0123456789abcdef\",\"st";
  close_out oc;
  write_file
    (Filename.concat (Filename.concat (Filename.concat killed "store") "tmp")
       "blob.31337.1")
    "half-written blob";
  (* Resume and compare every persisted artifact byte-for-byte. *)
  let resumed = Runner.resume ~dir:killed ~settings:quiet_settings () in
  Alcotest.(check int) "resume finishes the rest" 2
    (List.length resumed.Runner.completions);
  Alcotest.(check int) "resume skips the journaled" 2 resumed.Runner.skipped;
  Alcotest.(check (list string)) "journal outcome sets identical"
    (settled_lines uninterrupted) (settled_lines killed);
  Alcotest.(check (list (pair string string))) "stores identical"
    (store_blobs uninterrupted) (store_blobs killed);
  Alcotest.(check string) "reports byte-identical"
    (Report.render uninterrupted) (Report.render killed);
  Alcotest.(check string) "status byte-identical"
    (Report.status uninterrupted) (Report.status killed);
  Alcotest.(check (array string)) "crash tmp swept on resume" [||]
    (Sys.readdir (Filename.concat (Filename.concat killed "store") "tmp"));
  (* Resuming a finished run is a no-op. *)
  let idle = Runner.resume ~dir:killed ~settings:quiet_settings () in
  Alcotest.(check int) "nothing to do" 0 (List.length idle.Runner.completions);
  Alcotest.(check int) "everything skipped" (List.length smoke_jobs)
    idle.Runner.skipped

let test_runner_quarantines_poisoned_job () =
  let dir = fresh_dir () in
  let settings = { quiet_settings with Runner.retries = 2 } in
  (* fail_attempts is beyond the attempt budget: the job can never pass. *)
  let poisoned = probe_job ~fail_attempts:99 ~seed:1 "reno" in
  let jobs = [ poisoned; probe_job ~seed:2 "reno"; probe_job ~seed:3 "cubic" ] in
  let summary = Runner.run ~dir ~settings jobs in
  Alcotest.(check int) "grid completes" 3 (List.length summary.Runner.completions);
  let quarantined =
    List.filter
      (fun c -> match c.Runner.status with
        | Runner.Quarantined _ -> true | Runner.Done -> false)
      summary.Runner.completions
  in
  (match quarantined with
  | [ c ] ->
      Alcotest.(check string) "the poisoned job" (Job.digest poisoned)
        c.Runner.digest;
      Alcotest.(check int) "all attempts consumed" 3 c.Runner.attempts;
      (match c.Runner.status with
      | Runner.Quarantined err ->
          Alcotest.(check bool) "error recorded" true
            (String.length err > 0 && contains ~affix:"injected failure" err)
      | Runner.Done -> assert false)
  | _ -> Alcotest.fail "expected exactly one quarantined job");
  (* The journal records the quarantine with its error. *)
  let entries = Journal.replay (Filename.concat dir "journal.jsonl") in
  let entry =
    List.find (fun e -> e.Journal.job = Job.digest poisoned) entries
  in
  Alcotest.(check bool) "journaled as quarantined" true
    (entry.Journal.status = Journal.Quarantined);
  Alcotest.(check bool) "journaled error" true (entry.Journal.error <> None);
  (* Resume does not retry quarantined jobs: quarantine is terminal. *)
  let idle = Runner.resume ~dir ~settings () in
  Alcotest.(check int) "quarantine is terminal" 0
    (List.length idle.Runner.completions)

let test_runner_retries_then_succeeds () =
  let dir = fresh_dir () in
  let flaky = probe_job ~fail_attempts:2 ~seed:1 "reno" in
  let summary =
    Runner.run ~dir ~settings:{ quiet_settings with Runner.retries = 2 }
      [ flaky ]
  in
  match summary.Runner.completions with
  | [ c ] ->
      Alcotest.(check bool) "succeeded" true (c.Runner.status = Runner.Done);
      Alcotest.(check int) "took three attempts" 3 c.Runner.attempts
  | _ -> Alcotest.fail "expected one completion"

let test_runner_timeout_quarantines () =
  let dir = fresh_dir () in
  let slow = probe_job ~sleep_ms:80 ~seed:1 "reno" in
  let summary =
    Runner.run ~dir
      ~settings:
        { quiet_settings with Runner.retries = 1; timeout_s = 0.01 }
      [ slow ]
  in
  match summary.Runner.completions with
  | [ { Runner.status = Runner.Quarantined err; attempts; _ } ] ->
      (* Deterministic message: the limit, never the measured elapsed. *)
      Alcotest.(check string) "deterministic timeout error"
        "exceeded 0.01s wall-clock limit" err;
      Alcotest.(check int) "attempt budget honored" 2 attempts
  | _ -> Alcotest.fail "expected a quarantined timeout"

let test_runner_shard_union_equals_whole () =
  let jobs =
    List.map (fun seed -> probe_job ~seed "reno") [ 1; 2; 3; 4; 5 ]
  in
  let whole = fresh_dir () in
  ignore (Runner.run ~dir:whole ~settings:quiet_settings jobs);
  let shard_lines i =
    let dir = fresh_dir () in
    ignore
      (Runner.run ~dir
         ~settings:{ quiet_settings with Runner.shard = Some (i, 2) }
         jobs);
    (settled_lines dir, store_blobs dir)
  in
  let lines0, blobs0 = shard_lines 0 in
  let lines1, blobs1 = shard_lines 1 in
  (* Disjoint... *)
  List.iter
    (fun l -> Alcotest.(check bool) "shards disjoint" false (List.mem l lines1))
    lines0;
  (* ...and their union is exactly the unsharded run. *)
  Alcotest.(check (list string)) "journal union = whole"
    (settled_lines whole)
    (List.sort String.compare (lines0 @ lines1));
  let merge a b =
    List.sort_uniq (fun (d, _) (d', _) -> String.compare d d') (a @ b)
  in
  Alcotest.(check (list (pair string string))) "store union = whole"
    (store_blobs whole) (merge blobs0 blobs1)

let test_runner_shard_select () =
  let xs = [ 0; 1; 2; 3; 4; 5; 6 ] in
  Alcotest.(check (list int)) "0/3" [ 0; 3; 6 ] (Runner.shard_select ~i:0 ~n:3 xs);
  Alcotest.(check (list int)) "1/3" [ 1; 4 ] (Runner.shard_select ~i:1 ~n:3 xs);
  Alcotest.(check (list int)) "2/3" [ 2; 5 ] (Runner.shard_select ~i:2 ~n:3 xs);
  match Runner.shard_select ~i:3 ~n:3 xs with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_runner_init_refuses_overwrite () =
  let dir = fresh_dir () in
  Runner.init ~dir [ probe_job ~seed:1 "reno" ];
  match Runner.init ~dir [ probe_job ~seed:2 "reno" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_runner_grid_persists_canonically () =
  let dir = fresh_dir () in
  let jobs = [ collect_job "reno"; probe_job ~seed:9 "cubic" ] in
  Runner.init ~dir jobs;
  let loaded = Runner.jobs_of_dir ~dir in
  Alcotest.(check (list string)) "canonical order, lossless"
    (List.sort String.compare (List.map Job.digest jobs))
    (List.map Job.digest loaded)

let merged_settled_lines dir =
  Runner.settled_entries ~verify:true dir
  |> List.map Journal.entry_to_line
  |> List.sort String.compare

let test_runner_worker_journals_merge () =
  (* Two coordinator workers sharing one run directory must together
     reproduce the single-process run byte-for-byte: journal outcome
     union, store, and report. *)
  let jobs = List.map (fun seed -> probe_job ~seed "reno") [ 1; 2; 3; 4; 5 ] in
  let whole = fresh_dir () in
  ignore (Runner.run ~dir:whole ~settings:quiet_settings jobs);
  let dir = fresh_dir () in
  Runner.init ~dir jobs;
  List.iter
    (fun i ->
      ignore
        (Runner.resume ~dir
           ~settings:{ quiet_settings with Runner.worker = Some (i, 2) }
           ()))
    [ 0; 1 ];
  Alcotest.(check (list string)) "two worker journals"
    [ "journal.w0of2.jsonl"; "journal.w1of2.jsonl" ]
    (List.map Filename.basename (Runner.journal_paths ~dir));
  Alcotest.(check (list string)) "journal union = single-process"
    (merged_settled_lines whole) (merged_settled_lines dir);
  Alcotest.(check (list (pair string string))) "stores identical"
    (store_blobs whole) (store_blobs dir);
  Alcotest.(check string) "reports byte-identical"
    (Report.render whole) (Report.render dir);
  (* A full-family resume (no worker slice) finds nothing left. *)
  let idle = Runner.resume ~dir ~settings:quiet_settings () in
  Alcotest.(check int) "family fully settled" 0
    (List.length idle.Runner.completions);
  Alcotest.(check int) "all skipped" (List.length jobs) idle.Runner.skipped

let test_runner_worker_excludes_shard () =
  let dir = fresh_dir () in
  Runner.init ~dir [ probe_job ~seed:1 "reno" ];
  match
    Runner.resume ~dir
      ~settings:
        { quiet_settings with Runner.worker = Some (0, 2); shard = Some (0, 2) }
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_runner_gc_keeps_live_sweeps_orphans () =
  let dir = fresh_dir () in
  ignore (Runner.run ~dir ~settings:quiet_settings smoke_jobs);
  let before_report = Report.render dir in
  let before_blobs = store_blobs dir in
  let stats = Runner.gc ~dir in
  Alcotest.(check int) "nothing live swept" 0 stats.Store.swept;
  Alcotest.(check (list (pair string string))) "store unchanged"
    before_blobs (store_blobs dir);
  (* Plant an orphan — a blob no journaled result references. *)
  let store = Store.open_ (Filename.concat dir "store") in
  let orphan = Store.put store "orphaned by a superseded run" in
  let stats = Runner.gc ~dir in
  Alcotest.(check int) "orphan swept" 1 stats.Store.swept;
  Alcotest.(check bool) "orphan gone" false (Store.mem store orphan);
  Alcotest.(check (list (pair string string))) "live blobs survive gc"
    before_blobs (store_blobs dir);
  Alcotest.(check string) "report unchanged by gc" before_report
    (Report.render dir)

let test_runner_compact_then_resume () =
  let dir = fresh_dir () in
  ignore (Runner.run ~dir ~settings:quiet_settings smoke_jobs);
  let before_report = Report.render dir in
  let before_lines = merged_settled_lines dir in
  Runner.compact ~dir;
  Alcotest.(check int) "journal is one checkpoint line" 1
    (List.length
       (String.split_on_char '\n'
          (String.trim (read_file (Filename.concat dir "journal.jsonl")))));
  Alcotest.(check (list string)) "outcome set survives" before_lines
    (merged_settled_lines dir);
  Alcotest.(check string) "report unchanged" before_report (Report.render dir);
  let idle = Runner.resume ~dir ~settings:quiet_settings () in
  Alcotest.(check int) "compacted run is still settled" 0
    (List.length idle.Runner.completions);
  Alcotest.(check int) "all skipped" (List.length smoke_jobs)
    idle.Runner.skipped

let test_report_verify_equivalent () =
  let dir = fresh_dir () in
  ignore (Runner.run ~dir ~settings:quiet_settings smoke_jobs);
  Alcotest.(check string) "verified render = fast render"
    (Report.render dir) (Report.render ~verify:true dir);
  Alcotest.(check string) "verified status = fast status"
    (Report.status dir) (Report.status ~verify:true dir)

let suites =
  [
    ( "batch.job",
      [
        Alcotest.test_case "json roundtrip" `Quick test_job_json_roundtrip;
        Alcotest.test_case "digest distinguishes" `Quick
          test_job_digest_distinguishes;
        Alcotest.test_case "expand counts" `Quick test_job_expand_counts;
        Alcotest.test_case "probe configless" `Quick
          test_job_expand_probe_configless;
        Alcotest.test_case "expand rejects empty" `Quick
          test_job_expand_rejects_empty;
        Alcotest.test_case "kind tokens" `Quick test_job_kind_tokens;
      ] );
    ( "batch.store",
      [
        Alcotest.test_case "put/get" `Quick test_store_put_get;
        Alcotest.test_case "missing" `Quick test_store_get_missing;
        Alcotest.test_case "corruption" `Quick test_store_detects_corruption;
        Alcotest.test_case "manifest mismatch" `Quick
          test_store_detects_manifest_mismatch;
        Alcotest.test_case "tmp sweep" `Quick test_store_sweeps_tmp;
        Alcotest.test_case "deferred flush/close" `Quick
          test_store_deferred_flush_and_close;
        Alcotest.test_case "pack recovery" `Quick test_store_pack_recovery;
        Alcotest.test_case "torn pack tail" `Quick test_store_torn_pack_tail;
        Alcotest.test_case "gc" `Quick test_store_gc;
      ] );
    ( "batch.journal",
      [
        Alcotest.test_case "line roundtrip" `Quick test_journal_line_roundtrip;
        Alcotest.test_case "append/replay" `Quick test_journal_append_replay;
        Alcotest.test_case "missing file" `Quick test_journal_missing_is_empty;
        Alcotest.test_case "torn tail" `Quick test_journal_drops_torn_tail;
        Alcotest.test_case "interior corruption" `Quick
          test_journal_interior_corruption_raises;
        Alcotest.test_case "checkpoint roundtrip" `Quick
          test_journal_checkpoint_roundtrip;
        Alcotest.test_case "torn checkpoint fallback" `Quick
          test_journal_torn_checkpoint_falls_back;
        Alcotest.test_case "interior checkpoint corruption" `Quick
          test_journal_interior_checkpoint_corruption_raises;
        Alcotest.test_case "compact" `Quick test_journal_compact;
        Alcotest.test_case "compact interrupted" `Quick
          test_journal_compact_interrupted;
        QCheck_alcotest.to_alcotest ~long:false qcheck_replay_equivalence;
      ] );
    ( "batch.group_commit",
      [
        Alcotest.test_case "flush and checkpoint" `Quick
          test_group_commit_flush_and_checkpoint;
      ] );
    ( "batch.runner",
      [
        Alcotest.test_case "kill and resume deterministic" `Quick
          test_runner_kill_and_resume_deterministic;
        Alcotest.test_case "quarantine containment" `Quick
          test_runner_quarantines_poisoned_job;
        Alcotest.test_case "retries then succeeds" `Quick
          test_runner_retries_then_succeeds;
        Alcotest.test_case "timeout quarantines" `Quick
          test_runner_timeout_quarantines;
        Alcotest.test_case "shard union = whole" `Quick
          test_runner_shard_union_equals_whole;
        Alcotest.test_case "shard select" `Quick test_runner_shard_select;
        Alcotest.test_case "init refuses overwrite" `Quick
          test_runner_init_refuses_overwrite;
        Alcotest.test_case "grid persists" `Quick
          test_runner_grid_persists_canonically;
        Alcotest.test_case "worker journals merge" `Quick
          test_runner_worker_journals_merge;
        Alcotest.test_case "worker excludes shard" `Quick
          test_runner_worker_excludes_shard;
        Alcotest.test_case "gc keeps live" `Quick
          test_runner_gc_keeps_live_sweeps_orphans;
        Alcotest.test_case "compact then resume" `Quick
          test_runner_compact_then_resume;
        Alcotest.test_case "verify equivalence" `Quick
          test_report_verify_equivalent;
      ] );
  ]
