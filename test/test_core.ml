(* Tests for the Abagnale core: replay, concretization, scoring, the
   refinement loop and the end-to-end pipeline. The full-pipeline test is
   the one expensive case and is marked `Slow. *)

open Abg_dsl.Expr

let mss = 1448.0

let segments =
  lazy
    (let cfg =
       Abg_netsim.Config.make ~duration:15.0 ~bandwidth_mbps:10.0 ~rtt_ms:50.0 ()
     in
     let trace =
       Abg_trace.Trace.collect cfg ~name:"reno" (fun ~mss () ->
           Abg_cca.Reno.create ~mss ())
     in
     Abg_trace.Segmentation.split ~min_length:50 ~skip_initial:true trace
     |> List.map (Abg_trace.Segmentation.thin ~max_records:300))

let first_segment () = List.hd (Lazy.force segments)

(* -- Replay -- *)

let test_replay_constant_handler () =
  let seg = first_segment () in
  let series = Abg_core.Replay.synthesize (Const (50.0 *. mss)) seg in
  Array.iter
    (fun v -> Alcotest.(check (float 1e-6)) "flat" (50.0 *. mss) v)
    series

let test_replay_seeded_from_truth () =
  let seg = first_segment () in
  let truth = Abg_trace.Segmentation.observed seg in
  let series = Abg_core.Replay.synthesize Cwnd seg in
  Alcotest.(check (float 1e-6)) "starts at truth" truth.(0) series.(0)

let test_replay_statefulness () =
  (* CWND + MSS must accumulate: last = first + (n-1) * MSS. *)
  let seg = first_segment () in
  let series = Abg_core.Replay.synthesize (Add (Cwnd, Signal Abg_dsl.Signal.Mss)) seg in
  let n = Array.length series in
  Alcotest.(check (float 1.0)) "accumulates"
    (series.(0) +. (float_of_int (n - 1) *. mss))
    series.(n - 1)

let test_replay_ceiling () =
  let seg = first_segment () in
  let explosive = Cube (Cube Cwnd) in
  let series = Abg_core.Replay.synthesize explosive seg in
  Array.iter
    (fun v -> Alcotest.(check bool) "bounded" true (v <= 1e12 && Float.is_finite v))
    series

let test_replay_distance_ordering () =
  let segs = Lazy.force segments in
  let tracking = Option.get (Abg_core.Fine_tuned.find_fine_tuned "reno") in
  let d_track = Abg_core.Replay.total_distance tracking segs in
  let d_flat = Abg_core.Replay.total_distance Cwnd segs in
  Alcotest.(check bool) "reno handler beats identity on reno traces" true
    (d_track < d_flat)

let test_replay_total_distance_sums () =
  let segs = Lazy.force segments in
  let h = Option.get (Abg_core.Fine_tuned.find_fine_tuned "reno") in
  let total = Abg_core.Replay.total_distance h segs in
  let sum = List.fold_left (fun acc s -> acc +. Abg_core.Replay.distance h s) 0.0 segs in
  Alcotest.(check (float 1e-6)) "sum" sum total

let test_replay_prepared_matches_plain () =
  (* The prepared fast path (compile once, cached envs, scratch buffer)
     must agree bit for bit with the one-shot entry points. *)
  let segs = Lazy.force segments in
  let h = Option.get (Abg_core.Fine_tuned.find_fine_tuned "reno") in
  let compiled = Abg_core.Replay.compile h in
  let seg = List.hd segs in
  let plain = Abg_core.Replay.synthesize h seg in
  let fast = Abg_core.Replay.synthesize_prepared (Abg_core.Replay.prepare seg) compiled in
  Alcotest.(check int) "series length" (Array.length plain) (Array.length fast);
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "series bit-identical" true (Float.equal v fast.(i)))
    plain;
  let prepared = List.map Abg_core.Replay.prepare segs in
  let total = Abg_core.Replay.total_distance h segs in
  let total_fast = Abg_core.Replay.total_distance_prepared prepared compiled in
  Alcotest.(check bool) "total bit-identical" true (Float.equal total total_fast)

let test_replay_total_distance_cutoff () =
  (* Cutoffs are an optimisation, never an approximation: above the true
     total the result is exact; below it the result is either [infinity]
     (abandoned) or still the exact total. *)
  let segs = Lazy.force segments in
  let h = Option.get (Abg_core.Fine_tuned.find_fine_tuned "reno") in
  let full = Abg_core.Replay.total_distance h segs in
  let above = Abg_core.Replay.total_distance ~cutoff:(2.0 *. full) h segs in
  Alcotest.(check bool) "exact below cutoff" true (Float.equal full above);
  let below = Abg_core.Replay.total_distance ~cutoff:(full /. 4.0) h segs in
  Alcotest.(check bool) "sound above cutoff" true
    (below = infinity || Float.equal below full)

(* -- Concretize -- *)

let test_plausible_rejects_identity () =
  Alcotest.(check bool) "identity rejected" false (Abg_core.Concretize.plausible Cwnd);
  Alcotest.(check bool) "1 * CWND rejected" false
    (Abg_core.Concretize.plausible (Mul (Const 1.0, Cwnd)));
  Alcotest.(check bool) "smuggled identity rejected" false
    (Abg_core.Concretize.plausible
       (Div (Signal Abg_dsl.Signal.Mss,
             Div (Signal Abg_dsl.Signal.Mss, Cwnd))))

let test_plausible_rejects_always_shrinking () =
  Alcotest.(check bool) "0.5 * CWND rejected" false
    (Abg_core.Concretize.plausible (Mul (Const 0.5, Cwnd)))

let test_plausible_accepts_growers_and_flats () =
  Alcotest.(check bool) "reno accepted" true
    (Abg_core.Concretize.plausible
       (Option.get (Abg_core.Fine_tuned.find_fine_tuned "reno")));
  Alcotest.(check bool) "student4 MSS accepted" true
    (Abg_core.Concretize.plausible (Signal Abg_dsl.Signal.Mss));
  Alcotest.(check bool) "constant target accepted" true
    (Abg_core.Concretize.plausible (Mul (Const 88.0, Signal Abg_dsl.Signal.Mss)))

let test_completions_budget () =
  let rng = Abg_util.Rng.create 1 in
  let sk = Add (Cwnd, Mul (Hole 0, Macro Abg_dsl.Macro.Reno_inc)) in
  let handlers =
    Abg_core.Concretize.completions rng sk
      ~pool:Abg_dsl.Catalog.default_constants ~budget:10
  in
  Alcotest.(check bool) "within budget" true (List.length handlers <= 10);
  List.iter
    (fun h -> Alcotest.(check (list int)) "no holes" [] (holes h))
    handlers

(* -- Score -- *)

let test_score_picks_best_constant () =
  let rng = Abg_util.Rng.create 2 in
  let segs = [ first_segment () ] in
  let sk = Add (Cwnd, Mul (Hole 0, Macro Abg_dsl.Macro.Reno_inc)) in
  let scored =
    Abg_core.Score.sketch rng ~dsl:Abg_dsl.Catalog.reno
      ~metric:Abg_distance.Metric.Dtw ~budget:24 ~segments:segs sk
  in
  Alcotest.(check bool) "finite distance" true (Float.is_finite scored.Abg_core.Score.distance);
  (* The chosen completion must not lose to an arbitrary pool value by a
     large margin. *)
  let fixed = fill sk (fun _ -> 8.0) in
  let d_fixed = Abg_core.Replay.total_distance fixed segs in
  Alcotest.(check bool) "best <= aggressive constant" true
    (scored.Abg_core.Score.distance <= d_fixed +. 1e-6)

let test_score_infeasible_sketch () =
  let rng = Abg_util.Rng.create 3 in
  let scored =
    Abg_core.Score.sketch rng ~dsl:Abg_dsl.Catalog.reno
      ~metric:Abg_distance.Metric.Dtw ~budget:8
      ~segments:[ first_segment () ]
      (Mul (Const 0.5, Cwnd))
  in
  Alcotest.(check bool) "implausible scores infinity" true
    (scored.Abg_core.Score.distance = infinity)

(* -- Fine_tuned -- *)

let test_fine_tuned_lookup () =
  Alcotest.(check int) "20 synthesized rows" 20
    (List.length Abg_core.Fine_tuned.synthesized);
  Alcotest.(check int) "13 fine-tuned rows" 13
    (List.length Abg_core.Fine_tuned.fine_tuned);
  Alcotest.(check bool) "missing returns None" true
    (Abg_core.Fine_tuned.find_fine_tuned "student1" = None)

let test_scale_constants () =
  let h = Add (Cwnd, Mul (Const 0.7, Macro Abg_dsl.Macro.Reno_inc)) in
  match Abg_core.Fine_tuned.scale_constants 2.0 h with
  | Add (Cwnd, Mul (Const c, Macro Abg_dsl.Macro.Reno_inc)) ->
      Alcotest.(check (float 1e-9)) "scaled" 1.4 c
  | _ -> Alcotest.fail "structure preserved"

let test_scale_constants_identity_at_one () =
  List.iter
    (fun (_, h) ->
      Alcotest.(check bool) "x1.0 is identity" true
        (equal_num h (Abg_core.Fine_tuned.scale_constants 1.0 h)))
    Abg_core.Fine_tuned.fine_tuned

(* -- Refinement + synthesis (end to end, scaled down) -- *)

let tiny_config =
  {
    Abg_core.Refinement.default_config with
    Abg_core.Refinement.initial_samples = 8;
    completion_budget = 16;
    max_segment_records = 250;
    exhaustive_cap = 100;
    max_iterations = 3;
  }

let test_refinement_end_to_end () =
  let segs = Lazy.force segments in
  match Abg_core.Refinement.run ~config:tiny_config ~dsl:Abg_dsl.Catalog.reno segs with
  | None -> Alcotest.fail "refinement returned nothing"
  | Some r ->
      Alcotest.(check bool) "found finite handler" true
        (Float.is_finite r.Abg_core.Refinement.distance);
      Alcotest.(check bool) "iterations recorded" true
        (List.length r.Abg_core.Refinement.iterations >= 1);
      Alcotest.(check int) "initial buckets" 128 r.Abg_core.Refinement.buckets_initial;
      (* The winner must beat the identity handler. *)
      let d_identity = Abg_core.Replay.total_distance Cwnd segs in
      Alcotest.(check bool) "beats identity" true
        (r.Abg_core.Refinement.distance < d_identity);
      (* The ranking instrumentation exposes the fine-tuned handler's
         bucket. *)
      let target = Option.get (Abg_core.Fine_tuned.find_fine_tuned "reno") in
      (match Abg_core.Refinement.bucket_rank_of r ~target ~iteration:1 with
      | Some (rank, total) ->
          Alcotest.(check bool) "rank within range" true (rank >= 1 && rank <= total)
      | None -> Alcotest.fail "target bucket must be ranked in iteration 1")

let test_synthesis_segments_fallback () =
  (* A lossless CCA (student5) yields no loss-bounded segments; synthesis
     must fall back to whole-trace segments. *)
  let cfg = Abg_netsim.Config.make ~duration:5.0 ~bandwidth_mbps:10.0 ~rtt_ms:50.0 () in
  let trace =
    Abg_trace.Trace.collect cfg ~name:"student5" (fun ~mss () ->
        Abg_cca.Student.student5 ~mss ())
  in
  let rng = Abg_util.Rng.create 4 in
  let segs =
    Abg_core.Synthesis.segments_of_traces rng ~metric:Abg_distance.Metric.Dtw
      ~budget:4 [ trace ]
  in
  Alcotest.(check bool) "fallback produces segments" true (segs <> [])

let test_synthesis_sorted_by_length () =
  let rng = Abg_util.Rng.create 4 in
  let cfg = Abg_netsim.Config.make ~duration:15.0 ~bandwidth_mbps:10.0 ~rtt_ms:25.0 () in
  let trace =
    Abg_trace.Trace.collect cfg ~name:"reno" (fun ~mss () ->
        Abg_cca.Reno.create ~mss ())
  in
  let segs =
    Abg_core.Synthesis.segments_of_traces rng ~metric:Abg_distance.Metric.Dtw
      ~budget:6 [ trace ]
  in
  let lengths = List.map Abg_trace.Segmentation.length segs in
  Alcotest.(check (list int)) "descending" (List.sort (fun a b -> compare b a) lengths) lengths

let test_synthesis_deterministic () =
  (* The hot-path machinery (compiled handlers, cutoffs, prepared truths,
     domain pool) must not change *which* handler wins or its score: the
     full default-config synthesis on the seeded reno suite pins the exact
     winner recorded before the overhaul. *)
  let traces =
    Abg_trace.Trace.collect_suite ~duration:20.0 ~n:4 ~name:"reno"
      (fun ~mss () -> Abg_cca.Reno.create ~mss ())
  in
  match
    Abg_core.Synthesis.run ~config:Abg_core.Refinement.default_config
      ~dsl:Abg_dsl.Catalog.reno ~name:"reno" traces
  with
  | None -> Alcotest.fail "synthesis returned nothing"
  | Some o ->
      Alcotest.(check string) "winning handler" "CWND + reno-inc"
        o.Abg_core.Synthesis.pretty;
      Alcotest.(check (float 1e-9)) "winning distance" 10.782077104571155
        o.Abg_core.Synthesis.distance

let test_abagnale_facade () =
  let cfg = Abg_netsim.Config.make ~duration:8.0 ~bandwidth_mbps:10.0 ~rtt_ms:50.0 () in
  let traces =
    [ Abg_trace.Trace.collect cfg ~name:"reno" (fun ~mss () ->
          Abg_cca.Reno.create ~mss ()) ]
  in
  let d =
    Abg_core.Abagnale.handler_distance
      ~handler:(Option.get (Abg_core.Fine_tuned.find_fine_tuned "reno"))
      traces
  in
  Alcotest.(check bool) "facade distance finite" true (Float.is_finite d)

let suites =
  [
    ( "core.replay",
      [
        Alcotest.test_case "constant handler" `Quick test_replay_constant_handler;
        Alcotest.test_case "seeded from truth" `Quick test_replay_seeded_from_truth;
        Alcotest.test_case "statefulness" `Quick test_replay_statefulness;
        Alcotest.test_case "ceiling" `Quick test_replay_ceiling;
        Alcotest.test_case "distance ordering" `Quick test_replay_distance_ordering;
        Alcotest.test_case "total = sum" `Quick test_replay_total_distance_sums;
        Alcotest.test_case "prepared = plain" `Quick test_replay_prepared_matches_plain;
        Alcotest.test_case "cutoff sound" `Quick test_replay_total_distance_cutoff;
      ] );
    ( "core.concretize",
      [
        Alcotest.test_case "rejects identity" `Quick test_plausible_rejects_identity;
        Alcotest.test_case "rejects shrinkers" `Quick test_plausible_rejects_always_shrinking;
        Alcotest.test_case "accepts growers/flats" `Quick test_plausible_accepts_growers_and_flats;
        Alcotest.test_case "budget" `Quick test_completions_budget;
      ] );
    ( "core.score",
      [
        Alcotest.test_case "best constant" `Quick test_score_picks_best_constant;
        Alcotest.test_case "infeasible sketch" `Quick test_score_infeasible_sketch;
      ] );
    ( "core.fine_tuned",
      [
        Alcotest.test_case "lookups" `Quick test_fine_tuned_lookup;
        Alcotest.test_case "scale constants" `Quick test_scale_constants;
        Alcotest.test_case "scale identity" `Quick test_scale_constants_identity_at_one;
      ] );
    ( "core.pipeline",
      [
        Alcotest.test_case "refinement end-to-end" `Slow test_refinement_end_to_end;
        Alcotest.test_case "synthesis deterministic" `Slow test_synthesis_deterministic;
        Alcotest.test_case "segments fallback" `Quick test_synthesis_segments_fallback;
        Alcotest.test_case "segments sorted" `Quick test_synthesis_sorted_by_length;
        Alcotest.test_case "facade" `Quick test_abagnale_facade;
      ] );
  ]
