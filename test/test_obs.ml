(* Tests for Abg_obs: sharded counter merge under pool load, JSON
   snapshot round-trip and key-ordering stability, disabled-mode no-op
   semantics, histogram bucket invariants, and the counter diff the CI
   telemetry gate runs.

   Instruments are process-global, so tests use uniquely-named
   instruments and reset only those — never [Obs.reset], which would
   zero counters other suites (trace store, enum) depend on. *)

open Abg_obs

(* Run [f] with telemetry forced to [enabled], restoring the previous
   state even if [f] raises. *)
let with_enabled enabled f =
  let before = Obs.enabled () in
  Obs.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Obs.set_enabled before) f

(* -- sharded counters -- *)

let test_counter_basic () =
  let c = Obs.Counter.make "test.obs.basic" in
  Obs.Counter.reset c;
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "incr + add merge" 42 (Obs.Counter.value c);
  Obs.Counter.add c 0;
  Alcotest.(check int) "add 0 is free" 42 (Obs.Counter.value c);
  Obs.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Obs.Counter.value c)

let test_counter_idempotent_make () =
  let a = Obs.Counter.make "test.obs.same" in
  let b = Obs.Counter.make "test.obs.same" in
  Obs.Counter.reset a;
  Obs.Counter.incr a;
  Obs.Counter.incr b;
  Alcotest.(check int) "same registration" 2 (Obs.Counter.value a)

(* The merge must see every shard: increments from pool workers land in
   per-domain cells, and the snapshot-time sum has to equal the
   sequential total regardless of how the pool spread the work. *)
let test_counter_merge_under_pool_load () =
  let c = Obs.Counter.make "test.obs.pool" in
  Obs.Counter.reset c;
  let items = Array.init 200 (fun i -> i) in
  let per_item = 37 in
  let _ =
    Abg_parallel.Pool.map
      (fun _ ->
        for _ = 1 to per_item do
          Obs.Counter.incr c
        done)
      items
  in
  Alcotest.(check int)
    "sum over shards = sequential total"
    (Array.length items * per_item)
    (Obs.Counter.value c)

let test_floatcell_merge_under_pool_load () =
  let f = Obs.Floatcell.make "test.obs.poolf" in
  let items = Array.init 100 (fun i -> i) in
  let base = Obs.Floatcell.total f in
  let _ = Abg_parallel.Pool.map (fun _ -> Obs.Floatcell.add f 0.5) items in
  Alcotest.(check (float 1e-9))
    "float shards merge" 50.0
    (Obs.Floatcell.total f -. base);
  let per_domain_sum =
    List.fold_left (fun acc (_, v) -> acc +. v) 0.0 (Obs.Floatcell.per_domain f)
  in
  Alcotest.(check (float 1e-9))
    "per-domain breakdown sums to total" (Obs.Floatcell.total f)
    per_domain_sum

(* -- disabled mode -- *)

let test_disabled_noop () =
  let c = Obs.Counter.make "test.obs.disabled" in
  let h = Obs.Histogram.make "test.obs.disabled.h" in
  let f = Obs.Floatcell.make "test.obs.disabled.f" in
  Obs.Counter.reset c;
  let h_before = (Obs.Histogram.summary h).Obs.Histogram.count in
  let f_before = Obs.Floatcell.total f in
  with_enabled false (fun () ->
      Alcotest.(check bool) "reads as disabled" false (Obs.enabled ());
      Obs.Counter.incr c;
      Obs.Counter.add c 100;
      Obs.Histogram.observe h 42.0;
      Obs.Floatcell.add f 1.0;
      let ran = ref false in
      let x = Obs.span "test-disabled-span" (fun () -> ran := true; 7) in
      Alcotest.(check int) "span still runs f" 7 x;
      Alcotest.(check bool) "span body executed" true !ran);
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c);
  Alcotest.(check int)
    "histogram untouched" h_before
    (Obs.Histogram.summary h).Obs.Histogram.count;
  Alcotest.(check (float 0.0)) "floatcell untouched" f_before
    (Obs.Floatcell.total f);
  Obs.Counter.incr c;
  Alcotest.(check int) "recording resumes after re-enable" 1
    (Obs.Counter.value c)

(* -- spans -- *)

let test_span_paths () =
  let count name =
    match List.assoc_opt name (Obs.snapshot ()).Obs.histograms with
    | None -> 0
    | Some s -> s.Obs.Histogram.count
  in
  let outer = count "span/test-outer" in
  let inner = count "span/test-outer/test-inner" in
  Obs.span "test-outer" (fun () ->
      Obs.span "test-inner" (fun () -> ignore (Sys.opaque_identity 1)));
  Alcotest.(check int) "outer span recorded" (outer + 1)
    (count "span/test-outer");
  Alcotest.(check int) "nested path joins with /" (inner + 1)
    (count "span/test-outer/test-inner")

let test_span_unwinds_on_raise () =
  (try
     Obs.span "test-raise" (fun () -> failwith "boom")
   with Failure _ -> ());
  (* If the span stack leaked, this would record under
     "span/test-raise/test-after". *)
  let before =
    List.assoc_opt "span/test-raise/test-after"
      (Obs.snapshot ()).Obs.histograms
  in
  Obs.span "test-after" (fun () -> ());
  let after =
    List.assoc_opt "span/test-raise/test-after"
      (Obs.snapshot ()).Obs.histograms
  in
  Alcotest.(check bool) "stack popped on raise" true (before = after)

(* -- snapshot / report -- *)

let is_sorted names = List.sort compare names = names

let test_snapshot_sections_sorted () =
  ignore (Obs.Counter.make "test.obs.zzz");
  ignore (Obs.Counter.make "test.obs.aaa");
  let snap = Obs.snapshot () in
  Alcotest.(check bool) "counters sorted" true
    (is_sorted (List.map fst snap.Obs.counters));
  Alcotest.(check bool) "volatile sorted" true
    (is_sorted (List.map fst snap.Obs.volatile));
  Alcotest.(check bool) "gauges sorted" true
    (is_sorted (List.map fst snap.Obs.gauges));
  Alcotest.(check bool) "histograms sorted" true
    (is_sorted (List.map fst snap.Obs.histograms))

let test_volatile_partition () =
  let v = Obs.Counter.make ~volatile:true "test.obs.volatile" in
  Obs.Counter.incr v;
  let snap = Obs.snapshot () in
  Alcotest.(check bool) "volatile not in deterministic section" true
    (not (List.mem_assoc "test.obs.volatile" snap.Obs.counters));
  Alcotest.(check bool) "volatile in volatile section" true
    (List.mem_assoc "test.obs.volatile" snap.Obs.volatile)

let test_report_roundtrip () =
  let c = Obs.Counter.make "test.obs.roundtrip" in
  Obs.Counter.reset c;
  Obs.Counter.add c 12345;
  let snap = Obs.snapshot () in
  let doc = Report.to_json snap in
  Alcotest.(check string) "serialization is stable" doc (Report.to_json snap);
  let json = Report.parse doc in
  (match Report.member "schema" json with
  | Some (Report.Str s) -> Alcotest.(check string) "schema tag" Report.schema s
  | _ -> Alcotest.fail "schema member missing");
  let counters = Report.counters_of_json json in
  Alcotest.(check bool) "parsed counters match snapshot" true
    (counters = snap.Obs.counters);
  Alcotest.(check int) "value survives round-trip" 12345
    (List.assoc "test.obs.roundtrip" counters)

let test_find_counter () =
  let c = Obs.Counter.make "test.obs.find" in
  Obs.Counter.reset c;
  Obs.Counter.add c 9;
  let snap = Obs.snapshot () in
  Alcotest.(check int) "present" 9 (Report.find_counter snap "test.obs.find");
  Alcotest.(check int) "absent is 0" 0
    (Report.find_counter snap "test.obs.no-such-counter")

(* -- diff (the CI gate) -- *)

let doc_of_counters counters =
  let fields =
    List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v) counters
  in
  Printf.sprintf
    "{\"schema\": \"%s\", \"counters\": {%s}, \"volatile\": {}, \"gauges\": \
     {}, \"histograms\": {}, \"floatcells\": {}}"
    Report.schema
    (String.concat ", " fields)

let test_diff_agree () =
  let doc = doc_of_counters [ ("a", 1); ("b", 2) ] in
  Alcotest.(check int) "no drift" 0
    (List.length (Report.diff_counters ~baseline:doc ~current:doc))

let test_diff_drift_kinds () =
  let baseline = doc_of_counters [ ("a", 1); ("b", 2); ("c", 3) ] in
  let current = doc_of_counters [ ("b", 2); ("c", 30); ("d", 4) ] in
  let drifts = Report.diff_counters ~baseline ~current in
  let has p = List.exists p drifts in
  Alcotest.(check int) "three drifts" 3 (List.length drifts);
  Alcotest.(check bool) "missing a" true
    (has (function Report.Missing ("a", 1) -> true | _ -> false));
  Alcotest.(check bool) "changed c" true
    (has (function Report.Changed ("c", 3, 30) -> true | _ -> false));
  Alcotest.(check bool) "unexpected d" true
    (has (function Report.Unexpected ("d", 4) -> true | _ -> false))

(* -- histogram invariants (qcheck) -- *)

let arb_value =
  QCheck.(
    oneof
      [
        float;
        make Gen.(float_range 0.0 10.0);
        make Gen.(float_range 1.0 1e12);
        always 0.0;
        always nan;
        always infinity;
        always neg_infinity;
      ])

let prop_bucket_in_range =
  QCheck.Test.make ~name:"bucket_of lands in [0, buckets)" ~count:500 arb_value
    (fun v ->
      let b = Obs.Histogram.bucket_of v in
      b >= 0 && b < Obs.Histogram.buckets)

let prop_bucket_contains =
  QCheck.Test.make ~name:"lower_bound b <= v < lower_bound (b+1)" ~count:500
    arb_value (fun v ->
      let b = Obs.Histogram.bucket_of v in
      if Float.is_nan v || v < 1.0 then b = 0
      else
        Obs.Histogram.lower_bound b <= v
        && (b = Obs.Histogram.buckets - 1
           || v < Obs.Histogram.lower_bound (b + 1)))

let prop_lower_bounds_monotone =
  QCheck.Test.make ~name:"lower_bound is monotone" ~count:100
    QCheck.(make Gen.(int_range 0 (Obs.Histogram.buckets - 2)))
    (fun b -> Obs.Histogram.lower_bound b < Obs.Histogram.lower_bound (b + 1))

let prop_summary_count =
  QCheck.Test.make ~name:"summary count = sum of bucket counts" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 50) arb_value)
    (fun vs ->
      let h = Obs.Histogram.make "test.obs.qcheck.h" in
      let before = Obs.Histogram.summary h in
      List.iter (Obs.Histogram.observe h) vs;
      let s = Obs.Histogram.summary h in
      let bucket_total =
        List.fold_left (fun acc (_, n) -> acc + n) 0 s.Obs.Histogram.nonzero
      in
      s.Obs.Histogram.count - before.Obs.Histogram.count = List.length vs
      && s.Obs.Histogram.count = bucket_total)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "counter basic" `Quick test_counter_basic;
        Alcotest.test_case "counter make idempotent" `Quick
          test_counter_idempotent_make;
        Alcotest.test_case "counter merge under pool load" `Quick
          test_counter_merge_under_pool_load;
        Alcotest.test_case "floatcell merge under pool load" `Quick
          test_floatcell_merge_under_pool_load;
        Alcotest.test_case "disabled mode is a no-op" `Quick
          test_disabled_noop;
        Alcotest.test_case "span paths" `Quick test_span_paths;
        Alcotest.test_case "span unwinds on raise" `Quick
          test_span_unwinds_on_raise;
        Alcotest.test_case "snapshot sections sorted" `Quick
          test_snapshot_sections_sorted;
        Alcotest.test_case "volatile partition" `Quick test_volatile_partition;
      ]
      @ qcheck
          [
            prop_bucket_in_range;
            prop_bucket_contains;
            prop_lower_bounds_monotone;
            prop_summary_count;
          ] );
    ( "obs.report",
      [
        Alcotest.test_case "json round-trip" `Quick test_report_roundtrip;
        Alcotest.test_case "find_counter" `Quick test_find_counter;
        Alcotest.test_case "diff: agreement" `Quick test_diff_agree;
        Alcotest.test_case "diff: drift kinds" `Quick test_diff_drift_kinds;
      ] );
  ]
