(* Tests for the classifiers and their feature extraction. Classification
   runs real simulations, so these share one cached trace suite per CCA
   and keep the scenario count small. *)

let suite_for = Hashtbl.create 7

let traces name =
  match Hashtbl.find_opt suite_for name with
  | Some t -> t
  | None ->
      let ctor = Option.get (Abg_cca.Registry.find name) in
      (* Same probing grid as the classifier's references (a Gordon-style
         tool controls its own bottleneck), but different seeds and
         durations so the test never compares two identical runs. *)
      let cfgs =
        [ Abg_netsim.Config.make ~duration:18.0 ~seed:900 ~bandwidth_mbps:5.0
            ~rtt_ms:10.0 ~ack_jitter:0.001 ();
          Abg_netsim.Config.make ~duration:18.0 ~seed:901 ~bandwidth_mbps:10.0
            ~rtt_ms:25.0 ~ack_jitter:0.001 ();
          Abg_netsim.Config.make ~duration:18.0 ~seed:902 ~bandwidth_mbps:12.0
            ~rtt_ms:50.0 ~ack_jitter:0.001 ();
          Abg_netsim.Config.make ~duration:18.0 ~seed:903 ~bandwidth_mbps:15.0
            ~rtt_ms:75.0 ~ack_jitter:0.001 () ]
      in
      let t = List.map (fun cfg -> Abg_trace.Trace.collect cfg ~name ctor) cfgs in
      Hashtbl.replace suite_for name t;
      t

let test_features_sane () =
  let f = Abg_classifier.Features.extract (traces "reno") in
  Alcotest.(check bool) "decrease factor in (0,1]" true
    (f.Abg_classifier.Features.decrease_factor > 0.0
    && f.Abg_classifier.Features.decrease_factor <= 1.2);
  Alcotest.(check bool) "flatness in [0,1]" true
    (f.Abg_classifier.Features.flatness >= 0.0
    && f.Abg_classifier.Features.flatness <= 1.0);
  Alcotest.(check bool) "mean window positive" true
    (f.Abg_classifier.Features.mean_cwnd_mss > 0.0);
  Alcotest.(check bool) "to_string total" true
    (String.length (Abg_classifier.Features.to_string f) > 0)

let test_features_vector_finite () =
  List.iter
    (fun name ->
      let v = Abg_classifier.Features.to_vector (Abg_classifier.Features.extract (traces name)) in
      Array.iter
        (fun x -> Alcotest.(check bool) (name ^ " finite") true (Float.is_finite x))
        v)
    [ "reno"; "bbr"; "vegas" ]

let test_features_distinguish_families () =
  (* Vegas sits flat; Reno saws. The flatness feature must separate
     them. *)
  let f_reno = Abg_classifier.Features.extract (traces "reno") in
  let f_vegas = Abg_classifier.Features.extract (traces "vegas") in
  Alcotest.(check bool) "vegas flatter than reno" true
    (f_vegas.Abg_classifier.Features.flatness
    > f_reno.Abg_classifier.Features.flatness)

(* Regression for the merged decrease-factor sweep: on a synthetic trace
   with one loss per sawtooth period — landing both exactly on record
   timestamps and between them, plus losses outside the recorded span —
   the linear-time cursor scan must reproduce the old
   O(losses * records) rescan bit for bit. *)
let synthetic_many_loss_trace () =
  let cfg =
    Abg_netsim.Config.make ~duration:60.0 ~bandwidth_mbps:10.0 ~rtt_ms:50.0 ()
  in
  let mss = cfg.Abg_netsim.Config.mss in
  let dt = 0.01 in
  let n = 6000 in
  let records =
    Array.init n (fun i ->
        let time = float_of_int i *. dt in
        let phase = Float.rem time 0.5 in
        let in_flight = mss *. (10.0 +. (20.0 *. phase)) in
        {
          Abg_trace.Record.time;
          cwnd = in_flight;
          in_flight;
          acked_bytes = mss;
          rtt = 0.05 +. (0.01 *. phase);
          min_rtt = 0.05;
          max_rtt = 0.08;
          ack_rate = 1e6;
          rtt_gradient = 0.0;
          delay_gradient = 0.0;
          time_since_loss = phase;
          wmax = 30.0 *. mss;
          mss;
        })
  in
  let mid_losses =
    (* Even ones at exact record timestamps, odd ones between records. *)
    Array.init 110 (fun k ->
        (0.5 *. float_of_int (k + 1))
        +. if k mod 2 = 0 then 0.0 else 0.003)
  in
  let loss_times = Array.concat [ [| -1.0 |]; mid_losses; [| 70.0 |] ] in
  {
    Abg_trace.Trace.cca_name = "synthetic";
    scenario = "sawtooth";
    config = cfg;
    records;
    loss_times;
  }

(* The pre-optimization decrease scan, verbatim: full rescan per loss. *)
let reference_decrease_factor (tr : Abg_trace.Trace.t) =
  let records = tr.Abg_trace.Trace.records in
  let decreases = ref [] in
  Array.iter
    (fun loss_t ->
      let before = ref nan in
      let after = ref infinity in
      Array.iter
        (fun r ->
          let t = r.Abg_trace.Record.time in
          if t < loss_t then before := Abg_trace.Record.observed_cwnd r
          else if t <= loss_t +. 0.6 then
            after := Float.min !after (Abg_trace.Record.observed_cwnd r))
        records;
      if Float.is_finite !before && Float.is_finite !after && !before > 0.0
      then decreases := (!after /. !before) :: !decreases)
    tr.Abg_trace.Trace.loss_times;
  if !decreases = [] then 1.0
  else Abg_util.Stats.median (Array.of_list !decreases)

let test_features_decrease_regression () =
  let tr = synthetic_many_loss_trace () in
  let f = Abg_classifier.Features.extract [ tr ] in
  Alcotest.(check (float 0.0)) "decrease factor bit-identical"
    (reference_decrease_factor tr)
    f.Abg_classifier.Features.decrease_factor;
  let span =
    let n = Array.length tr.Abg_trace.Trace.records in
    tr.Abg_trace.Trace.records.(n - 1).Abg_trace.Record.time
    -. tr.Abg_trace.Trace.records.(0).Abg_trace.Record.time
  in
  Alcotest.(check (float 0.0)) "loss rate counts every loss"
    (float_of_int (Array.length tr.Abg_trace.Trace.loss_times) /. span)
    f.Abg_classifier.Features.loss_rate

let test_gordon_rank_nonempty () =
  let ranked = Abg_classifier.Gordon.rank (traces "reno") in
  Alcotest.(check int) "all known CCAs ranked"
    (List.length Abg_classifier.Gordon.known_set)
    (List.length ranked);
  let ds = List.map snd ranked in
  Alcotest.(check bool) "sorted" true (List.sort compare ds = ds)

let test_gordon_self_identification () =
  (* On fresh traces of CCAs with distinctive signatures, the closest
     known CCA should be the right family (exact identity for reno/bbr). *)
  List.iter
    (fun (name, acceptable) ->
      match Abg_classifier.Gordon.rank (traces name) with
      | (best, _) :: _ ->
          Alcotest.(check bool)
            (Printf.sprintf "%s -> %s acceptable" name best)
            true (List.mem best acceptable)
      | [] -> Alcotest.fail "empty ranking")
    [ ("reno", [ "reno"; "yeah"; "westwood"; "veno"; "illinois" ]);
      ("bbr", [ "bbr" ]);
      ("vegas", [ "vegas"; "veno"; "illinois"; "cubic" ]) ]

let test_gordon_verdict_to_string () =
  Alcotest.(check string) "known" "reno"
    (Abg_classifier.Gordon.verdict_to_string (Abg_classifier.Gordon.Known "reno"));
  Alcotest.(check string) "unknown close" "Unknown (vegas)"
    (Abg_classifier.Gordon.verdict_to_string
       (Abg_classifier.Gordon.Unknown (Some "vegas")));
  Alcotest.(check string) "unknown" "Unknown"
    (Abg_classifier.Gordon.verdict_to_string (Abg_classifier.Gordon.Unknown None))

let test_ccanalyzer_ranks_all () =
  let result = Abg_classifier.Ccanalyzer.classify (traces "student4") in
  Alcotest.(check bool) "ranks many" true
    (List.length result.Abg_classifier.Ccanalyzer.closest >= 10);
  match Abg_classifier.Ccanalyzer.closest_two result with
  | Some (a, b) -> Alcotest.(check bool) "two distinct" true (a <> b)
  | None -> Alcotest.fail "expected two closest"

let test_dsl_hint_families () =
  let open Abg_classifier in
  Alcotest.(check string) "reno family" "reno"
    (Dsl_hint.choose (Gordon.Known "westwood")).Abg_dsl.Catalog.name;
  Alcotest.(check string) "cubic family" "cubic"
    (Dsl_hint.choose (Gordon.Known "bic")).Abg_dsl.Catalog.name;
  Alcotest.(check string) "bbr family" "delay"
    (Dsl_hint.choose (Gordon.Known "bbr")).Abg_dsl.Catalog.name;
  Alcotest.(check string) "vegas family" "vegas"
    (Dsl_hint.choose (Gordon.Known "veno")).Abg_dsl.Catalog.name;
  Alcotest.(check string) "unknown-with-hint" "vegas"
    (Dsl_hint.choose (Gordon.Unknown (Some "nv"))).Abg_dsl.Catalog.name;
  Alcotest.(check string) "unknown fallback" "delay"
    (Dsl_hint.choose (Gordon.Unknown None)).Abg_dsl.Catalog.name

let suites =
  [
    ( "classifier.features",
      [
        Alcotest.test_case "sane ranges" `Quick test_features_sane;
        Alcotest.test_case "vector finite" `Quick test_features_vector_finite;
        Alcotest.test_case "distinguishes families" `Quick test_features_distinguish_families;
        Alcotest.test_case "decrease sweep regression" `Quick
          test_features_decrease_regression;
      ] );
    ( "classifier.gordon",
      [
        Alcotest.test_case "rank shape" `Quick test_gordon_rank_nonempty;
        Alcotest.test_case "self identification" `Slow test_gordon_self_identification;
        Alcotest.test_case "verdict strings" `Quick test_gordon_verdict_to_string;
      ] );
    ( "classifier.ccanalyzer",
      [ Alcotest.test_case "ranks all" `Slow test_ccanalyzer_ranks_all ] );
    ( "classifier.dsl_hint",
      [ Alcotest.test_case "family mapping" `Quick test_dsl_hint_families ] );
  ]
