(* Tests for Abg_util: PRNG, statistics, units, resampling, float
   helpers. *)

open Abg_util

let check_float = Alcotest.(check (float 1e-9))
let check_close msg a b = Alcotest.(check (float 1e-6)) msg a b

(* -- Rng -- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 10 (fun _ -> Rng.float a) in
  let ys = List.init 10 (fun _ -> Rng.float b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_float_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_int_range () =
  let rng = Rng.create 8 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (x >= 0 && x < 17)
  done

let test_rng_int_covers () =
  let rng = Rng.create 9 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 5) <- true
  done;
  Array.iter (fun s -> Alcotest.(check bool) "value reached" true s) seen

let test_rng_uniform () =
  let rng = Rng.create 10 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng 3.0 5.0 in
    Alcotest.(check bool) "in [3,5)" true (x >= 3.0 && x < 5.0)
  done

let test_rng_normal_moments () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.normal rng ~mean:2.0 ~stddev:0.5) in
  let mean = Stats.mean xs in
  let std = Stats.stddev xs in
  Alcotest.(check bool) "mean ~ 2" true (Float.abs (mean -. 2.0) < 0.02);
  Alcotest.(check bool) "std ~ 0.5" true (Float.abs (std -. 0.5) < 0.02)

let test_rng_exponential_positive () =
  let rng = Rng.create 12 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Rng.exponential rng ~rate:2.0 >= 0.0)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 13 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.create 14 in
  let a = Array.init 20 (fun i -> i) in
  let s = Rng.sample_without_replacement rng a 8 in
  Alcotest.(check int) "size" 8 (Array.length s);
  let distinct = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 8 (List.length distinct)

let test_rng_split_independent () =
  let rng = Rng.create 15 in
  let child = Rng.split rng in
  let a = Rng.float rng and b = Rng.float child in
  Alcotest.(check bool) "different streams" true (a <> b)

(* Splitting is the fuzzer's per-individual stream derivation: two
   children of one parent must be disjoint streams, and each must be
   individually reproducible from the same parent seed. *)
let test_rng_split_streams () =
  let draw rng n = List.init n (fun _ -> Rng.float rng) in
  let children seed =
    let parent = Rng.create seed in
    let c1 = Rng.split parent in
    let c2 = Rng.split parent in
    (draw c1 64, draw c2 64)
  in
  let a1, a2 = children 1234 in
  let b1, b2 = children 1234 in
  Alcotest.(check (list (float 0.0))) "first child reproducible" a1 b1;
  Alcotest.(check (list (float 0.0))) "second child reproducible" a2 b2;
  Alcotest.(check bool) "sibling streams disjoint" true
    (List.for_all2 (fun x y -> x <> y) a1 a2);
  (* and neither shadows the parent's own continuation *)
  let parent = Rng.create 1234 in
  let _ = Rng.split parent and _ = Rng.split parent in
  Alcotest.(check bool) "parent stream unexhausted" true
    (List.for_all2 (fun x y -> x <> y) (draw parent 64) a1)

(* -- Stats -- *)

let test_stats_mean () = check_close "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_variance () =
  (* Sample variance of 1..5: sum of squared deviations 10, n-1 = 4. *)
  check_close "variance" 2.5 (Stats.variance [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let test_stats_welford_matches_batch () =
  let xs = Array.init 100 (fun i -> float_of_int (i * i) /. 7.0) in
  let acc = Stats.accumulator () in
  Array.iter (Stats.add acc) xs;
  check_close "mean" (Stats.mean xs) (Stats.mean_of acc);
  check_close "variance" (Stats.variance xs) (Stats.variance_of acc);
  Alcotest.(check int) "count" 100 (Stats.count acc);
  check_close "min" 0.0 (Stats.min_of acc);
  check_close "max" (Stats.mean [| 99.0 *. 99.0 /. 7.0 |]) (Stats.max_of acc)

let test_stats_median_odd () =
  check_close "median" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |])

let test_stats_median_even () =
  check_close "median" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_stats_quantile_bounds () =
  let xs = [| 3.0; 1.0; 4.0; 1.0; 5.0 |] in
  check_close "q0 = min" 1.0 (Stats.quantile xs 0.0);
  check_close "q1 = max" 5.0 (Stats.quantile xs 1.0)

let test_stats_regression () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = [| 1.0; 3.0; 5.0; 7.0 |] in
  let slope, intercept = Stats.linear_regression xs ys in
  check_close "slope" 2.0 slope;
  check_close "intercept" 1.0 intercept

let test_stats_pearson_perfect () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close "corr +1" 1.0 (Stats.pearson xs (Array.map (fun x -> (2.0 *. x) +. 1.0) xs));
  check_close "corr -1" (-1.0) (Stats.pearson xs (Array.map (fun x -> -.x) xs))

let test_stats_pearson_constant () =
  check_close "constant series" 0.0
    (Stats.pearson [| 1.0; 1.0; 1.0 |] [| 1.0; 2.0; 3.0 |])

let test_stats_ewma () =
  let out = Stats.ewma 0.5 [| 0.0; 1.0; 1.0 |] in
  check_close "step response" 0.75 out.(2)

let test_stats_diff () =
  Alcotest.(check (array (float 1e-9))) "diff" [| 1.0; 2.0 |]
    (Stats.diff [| 0.0; 1.0; 3.0 |])

let test_stats_argmin () =
  Alcotest.(check int) "argmin" 2
    (Stats.argmin (fun x -> x) [| 3.0; 2.0; 1.0; 4.0 |])

(* -- Units -- *)

let test_units_algebra () =
  let open Units in
  Alcotest.(check bool) "B * s^-1 = rate" true (equal (mul bytes { bytes = 0; seconds = -1 }) rate);
  Alcotest.(check bool) "rate * s = B" true (equal (mul rate seconds) bytes);
  Alcotest.(check bool) "B / B = 1" true (equal (div bytes bytes) dimensionless);
  Alcotest.(check bool) "pow" true (equal (pow seconds 3) { bytes = 0; seconds = 3 })

let test_units_cbrt () =
  let open Units in
  (match cbrt { bytes = 3; seconds = -3 } with
  | Some u -> Alcotest.(check bool) "cbrt ok" true (equal u { bytes = 1; seconds = -1 })
  | None -> Alcotest.fail "expected Some");
  Alcotest.(check bool) "cbrt of bytes fails (the Cubic limitation)" true
    (cbrt bytes = None)

let test_units_domain () =
  let d = Units.domain ~limit:2 in
  Alcotest.(check int) "5x5 domain" 25 (List.length d);
  List.iter
    (fun u ->
      match Units.index_in_domain ~limit:2 u with
      | Some i -> Alcotest.(check bool) "index in range" true (i >= 0 && i < 25)
      | None -> Alcotest.fail "domain member must index")
    d

let test_units_to_string () =
  Alcotest.(check string) "rate" "B*s^-1" (Units.to_string Units.rate);
  Alcotest.(check string) "dimensionless" "1" (Units.to_string Units.dimensionless)

(* -- Resample -- *)

let test_resample_linear_endpoints () =
  let times = [| 0.0; 1.0; 2.0 |] and values = [| 0.0; 10.0; 20.0 |] in
  let out = Resample.linear ~times ~values ~n:5 in
  check_close "first" 0.0 out.(0);
  check_close "last" 20.0 out.(4);
  check_close "middle" 10.0 out.(2)

let test_resample_hold () =
  let times = [| 0.0; 1.0 |] and values = [| 5.0; 9.0 |] in
  let out = Resample.hold ~times ~values ~n:4 in
  check_close "held start" 5.0 out.(0);
  check_close "held mid" 5.0 out.(1);
  check_close "switch" 9.0 out.(3)

let test_resample_single_point () =
  let out = Resample.linear ~times:[| 1.0 |] ~values:[| 7.0 |] ~n:3 in
  Alcotest.(check (array (float 1e-9))) "constant" [| 7.0; 7.0; 7.0 |] out

let test_downsample () =
  let xs = Array.init 100 float_of_int in
  let out = Resample.downsample xs 10 in
  Alcotest.(check int) "length" 10 (Array.length out);
  check_close "first kept" 0.0 out.(0);
  check_close "last kept" 99.0 out.(9)

let test_downsample_short_input () =
  let xs = [| 1.0; 2.0 |] in
  Alcotest.(check (array (float 1e-9))) "unchanged" xs (Resample.downsample xs 10)

(* -- Floatx -- *)

let test_floatx_approx () =
  Alcotest.(check bool) "close" true (Floatx.approx_equal 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "far" false (Floatx.approx_equal 1.0 1.1)

let test_floatx_clamp () =
  check_close "below" 0.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 (-5.0));
  check_close "above" 1.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 5.0);
  check_close "inside" 0.5 (Floatx.clamp ~lo:0.0 ~hi:1.0 0.5)

let test_floatx_safe_div () =
  check_close "normal" 2.0 (Floatx.safe_div 4.0 2.0);
  check_close "by zero" 0.0 (Floatx.safe_div 4.0 0.0)

let test_floatx_cbrt () =
  check_close "positive" 2.0 (Floatx.cbrt 8.0);
  check_close "negative" (-2.0) (Floatx.cbrt (-8.0))

let test_floatx_fmod () =
  check_close "basic" 1.5 (Floatx.fmod 7.5 2.0);
  check_close "negative" 0.5 (Floatx.fmod (-1.5) 2.0);
  check_close "zero divisor" 0.0 (Floatx.fmod 5.0 0.0)

let test_floatx_log_grid () =
  let g = Floatx.log_grid ~lo:0.1 ~hi:10.0 ~n:3 in
  check_close "lo" 0.1 g.(0);
  check_close "mid" 1.0 g.(1);
  check_close "hi" 10.0 g.(2)

let test_floatx_lin_grid () =
  let g = Floatx.lin_grid ~lo:0.0 ~hi:4.0 ~n:5 in
  check_close "step" 1.0 g.(1)

(* -- QCheck properties -- *)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let x = Rng.int rng n in
      x >= 0 && x < n)

let prop_quantile_bounded =
  QCheck.Test.make ~name:"quantile within min..max" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 30) (float_bound_exclusive 100.0)) (float_bound_inclusive 1.0))
    (fun (xs, q) ->
      let a = Array.of_list xs in
      let v = Stats.quantile a q in
      let mn = Array.fold_left Float.min infinity a in
      let mx = Array.fold_left Float.max neg_infinity a in
      v >= mn -. 1e-9 && v <= mx +. 1e-9)

let prop_fmod_range =
  QCheck.Test.make ~name:"fmod lands in [0, |b|)" ~count:500
    QCheck.(pair (float_range (-100.) 100.) (float_range 0.001 50.0))
    (fun (a, b) ->
      let r = Floatx.fmod a b in
      r >= 0.0 && r < Float.abs b +. 1e-9)

let prop_ewma_bounded =
  QCheck.Test.make ~name:"ewma stays within input range" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 40) (float_range (-10.0) 10.0))
    (fun xs ->
      let a = Array.of_list xs in
      let out = Stats.ewma 0.3 a in
      let mn = Array.fold_left Float.min infinity a in
      let mx = Array.fold_left Float.max neg_infinity a in
      Array.for_all (fun v -> v >= mn -. 1e-9 && v <= mx +. 1e-9) out)

(* -- Parallel pool -- *)

let test_pool_map_matches_sequential () =
  let xs = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int)) "same results" (Array.map f xs)
    (Abg_parallel.Pool.map f xs)

let test_pool_map_forced_domains () =
  let xs = Array.init 37 (fun i -> i) in
  Alcotest.(check (array int)) "multi-domain" (Array.map succ xs)
    (Abg_parallel.Pool.map ~num_domains:4 succ xs)

let test_pool_mapi () =
  let xs = [| "a"; "b"; "c"; "d"; "e" |] in
  let out = Abg_parallel.Pool.mapi ~num_domains:2 (fun i s -> Printf.sprintf "%d%s" i s) xs in
  Alcotest.(check (array string)) "indexed" [| "0a"; "1b"; "2c"; "3d"; "4e" |] out

let test_pool_empty () =
  Alcotest.(check (array int)) "empty" [||] (Abg_parallel.Pool.map succ [||])

let test_pool_map_list () =
  Alcotest.(check (list int)) "list variant" [ 2; 3; 4 ]
    (Abg_parallel.Pool.map_list succ [ 1; 2; 3 ])

let test_pool_explicit_reuse () =
  (* An explicit pool serves many jobs before shutdown; shutdown is
     idempotent. *)
  let pool = Abg_parallel.Pool.create ~size:2 () in
  Alcotest.(check int) "size" 2 (Abg_parallel.Pool.size pool);
  let xs = Array.init 64 (fun i -> i) in
  for _ = 1 to 3 do
    Alcotest.(check (array int)) "reused pool"
      (Array.map (fun x -> x * x) xs)
      (Abg_parallel.Pool.map ~pool ~num_domains:3 (fun x -> x * x) xs)
  done;
  Abg_parallel.Pool.shutdown pool;
  Abg_parallel.Pool.shutdown pool

let test_pool_exception_reraised () =
  let xs = Array.init 50 (fun i -> i) in
  Alcotest.check_raises "re-raises worker exception" Exit (fun () ->
      ignore
        (Abg_parallel.Pool.map ~num_domains:2
           (fun x -> if x = 17 then raise Exit else x)
           xs));
  (* The pool must remain usable after a failed job. *)
  Alcotest.(check (array int)) "usable after failure" (Array.map succ xs)
    (Abg_parallel.Pool.map ~num_domains:2 succ xs)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let pool_suite =
  ( "util.pool",
    [
      Alcotest.test_case "matches sequential" `Quick test_pool_map_matches_sequential;
      Alcotest.test_case "forced domains" `Quick test_pool_map_forced_domains;
      Alcotest.test_case "mapi" `Quick test_pool_mapi;
      Alcotest.test_case "empty" `Quick test_pool_empty;
      Alcotest.test_case "map_list" `Quick test_pool_map_list;
      Alcotest.test_case "explicit pool reuse" `Quick test_pool_explicit_reuse;
      Alcotest.test_case "exception re-raise" `Quick test_pool_exception_reraised;
    ] )

let suites =
  [
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
        Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "int range" `Quick test_rng_int_range;
        Alcotest.test_case "int covers" `Quick test_rng_int_covers;
        Alcotest.test_case "uniform range" `Quick test_rng_uniform;
        Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
        Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "sample w/o replacement" `Quick test_rng_sample_without_replacement;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "split streams" `Quick test_rng_split_streams;
      ]
      @ qcheck [ prop_rng_int_in_bounds ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "variance" `Quick test_stats_variance;
        Alcotest.test_case "welford = batch" `Quick test_stats_welford_matches_batch;
        Alcotest.test_case "median odd" `Quick test_stats_median_odd;
        Alcotest.test_case "median even" `Quick test_stats_median_even;
        Alcotest.test_case "quantile bounds" `Quick test_stats_quantile_bounds;
        Alcotest.test_case "linear regression" `Quick test_stats_regression;
        Alcotest.test_case "pearson perfect" `Quick test_stats_pearson_perfect;
        Alcotest.test_case "pearson constant" `Quick test_stats_pearson_constant;
        Alcotest.test_case "ewma" `Quick test_stats_ewma;
        Alcotest.test_case "diff" `Quick test_stats_diff;
        Alcotest.test_case "argmin" `Quick test_stats_argmin;
      ]
      @ qcheck [ prop_quantile_bounded; prop_ewma_bounded ] );
    ( "util.units",
      [
        Alcotest.test_case "algebra" `Quick test_units_algebra;
        Alcotest.test_case "cbrt" `Quick test_units_cbrt;
        Alcotest.test_case "domain" `Quick test_units_domain;
        Alcotest.test_case "to_string" `Quick test_units_to_string;
      ] );
    ( "util.resample",
      [
        Alcotest.test_case "linear endpoints" `Quick test_resample_linear_endpoints;
        Alcotest.test_case "hold semantics" `Quick test_resample_hold;
        Alcotest.test_case "single point" `Quick test_resample_single_point;
        Alcotest.test_case "downsample" `Quick test_downsample;
        Alcotest.test_case "downsample short" `Quick test_downsample_short_input;
      ] );
    ( "util.floatx",
      [
        Alcotest.test_case "approx_equal" `Quick test_floatx_approx;
        Alcotest.test_case "clamp" `Quick test_floatx_clamp;
        Alcotest.test_case "safe_div" `Quick test_floatx_safe_div;
        Alcotest.test_case "cbrt" `Quick test_floatx_cbrt;
        Alcotest.test_case "fmod" `Quick test_floatx_fmod;
        Alcotest.test_case "log_grid" `Quick test_floatx_log_grid;
        Alcotest.test_case "lin_grid" `Quick test_floatx_lin_grid;
      ]
      @ qcheck [ prop_fmod_range ] );
    pool_suite;
  ]
