(* Tests for the SAT-based sketch enumeration: shapes, counting, buckets
   and the encoding's guarantees (sorts, units, budgets, no duplicates,
   no simplifiable output). *)

open Abg_dsl

let test_shape_indexing () =
  Alcotest.(check int) "depth-3 nodes" 13 (Abg_enum.Shape.num_nodes ~depth:3);
  Alcotest.(check int) "depth-4 nodes" 40 (Abg_enum.Shape.num_nodes ~depth:4);
  Alcotest.(check int) "child" 1 (Abg_enum.Shape.child 0 0);
  Alcotest.(check int) "parent" 0 (Abg_enum.Shape.parent 3);
  Alcotest.(check int) "position" 2 (Abg_enum.Shape.position 3);
  for i = 1 to 39 do
    Alcotest.(check int) "parent/child inverse" i
      (Abg_enum.Shape.child (Abg_enum.Shape.parent i) (Abg_enum.Shape.position i))
  done;
  Alcotest.(check int) "root level" 0 (Abg_enum.Shape.level 0);
  Alcotest.(check int) "level of node 4" 2 (Abg_enum.Shape.level 4)

let test_count_monotone_in_depth () =
  let components = Catalog.reno.Catalog.components in
  let c3 = Abg_enum.Count.universe_at ~components ~depth:3 in
  let c4 = Abg_enum.Count.universe_at ~components ~depth:4 in
  Alcotest.(check bool) "positive" true (c3 > 0.0);
  Alcotest.(check bool) "grows with depth" true (c4 > c3)

let test_count_depth_zero () =
  Alcotest.(check (float 0.0)) "no trees at depth 0" 0.0
    (Abg_enum.Count.universe_at ~components:Catalog.reno.Catalog.components
       ~depth:0)

let test_count_leaf_only () =
  (* Depth 1: exactly the num-sorted leaves. *)
  let components = Catalog.reno.Catalog.components in
  let leaves =
    List.length (List.filter (fun c -> Component.arity c = 0) components)
  in
  Alcotest.(check (float 0.0)) "leaves" (float_of_int leaves)
    (Abg_enum.Count.universe_at ~components ~depth:1)

let test_buckets_feasibility () =
  let buckets = Abg_enum.Buckets.all Catalog.reno in
  Alcotest.(check bool) "empty bucket included" true
    (List.exists (fun b -> b = []) buckets);
  List.iter
    (fun b ->
      let has_ite = List.exists (Component.equal Component.Op_ite) b in
      let has_bool =
        List.exists
          (fun c -> Component.sort c = Component.Bool && Component.is_operator c)
          b
      in
      Alcotest.(check bool) "ite iff bool op" true (has_ite = has_bool))
    buckets

let test_buckets_count_reno () =
  (* 4 arithmetic ops (16 subsets) x (no conditional, or ite with any
     non-empty subset of 3 comparisons = 7): 16 * 8 = 128. *)
  Alcotest.(check int) "reno bucket count" 128
    (List.length (Abg_enum.Buckets.all Catalog.reno))

let test_enumerate_distinct () =
  let enc = Abg_enum.Encode.create Catalog.reno in
  let seen = ref [] in
  for _ = 1 to 60 do
    match Abg_enum.Encode.next enc with
    | Some sk ->
        Alcotest.(check bool) "not seen before" false
          (List.exists (Expr.equal_num sk) !seen);
        seen := sk :: !seen
    | None -> ()
  done

let test_enumerate_well_formed () =
  let dsl = Catalog.reno in
  let enc = Abg_enum.Encode.create dsl in
  for _ = 1 to 60 do
    match Abg_enum.Encode.next enc with
    | Some sk ->
        Alcotest.(check bool) "depth budget" true
          (Expr.depth sk <= dsl.Catalog.max_depth);
        Alcotest.(check bool) "node budget" true
          (Expr.size sk <= dsl.Catalog.max_nodes);
        Alcotest.(check bool) "unit-checked" true
          (Unit_check.check sk ~expected:Abg_util.Units.bytes);
        Alcotest.(check bool) "not simplifiable" false
          (Simplify.is_simplifiable sk)
    | None -> ()
  done

let test_enumerate_bucket_restriction () =
  let enc = Abg_enum.Encode.create Catalog.reno in
  let bucket = [ Component.Op_add; Component.Op_mul ] in
  let sorted = List.sort Component.compare bucket in
  for _ = 1 to 25 do
    match Abg_enum.Encode.next ~bucket enc with
    | Some sk ->
        Alcotest.(check bool) "exact operator set" true
          (Abg_enum.Buckets.equal (Abg_enum.Buckets.of_sketch sk) sorted)
    | None -> ()
  done

let test_enumerate_empty_bucket () =
  (* Six operators cannot fit in seven nodes together with their leaves. *)
  let enc = Abg_enum.Encode.create Catalog.reno in
  let bucket =
    [ Component.Op_add; Component.Op_sub; Component.Op_mul; Component.Op_div;
      Component.Op_ite; Component.Op_lt ]
  in
  Alcotest.(check bool) "unsatisfiable bucket" true
    (Abg_enum.Encode.next ~bucket enc = None)

let test_enumerate_exhaustion_micro_dsl () =
  (* cwnd/mss/add at depth 2, <= 3 nodes. Non-simplifiable num-trees:
     cwnd, mss, and the adds over distinct/same leaves: cwnd+cwnd,
     cwnd+mss, mss+cwnd, mss+mss — of which cwnd+mss and mss+cwnd are
     commutative duplicates, merged by the canonical-form dedup stage.
     Total 5. *)
  let micro =
    {
      Catalog.name = "micro";
      components =
        [ Component.Leaf_cwnd; Component.Leaf_signal Signal.Mss;
          Component.Op_add ];
      max_depth = 2;
      max_nodes = 3;
      constant_pool = [| 1.0 |];
      unit_check = true;
    }
  in
  let enc = Abg_enum.Encode.create micro in
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Abg_enum.Encode.next enc with
    | Some _ -> incr count
    | None -> continue := false
  done;
  Alcotest.(check int) "exhaustive count" 5 !count;
  (* The merged pair shows up in the per-reason counters. *)
  let dup =
    List.assoc "duplicate" (Abg_enum.Encode.prune_stats enc)
  in
  Alcotest.(check int) "one commutative duplicate" 1 dup

let test_enumerate_finds_reno_shape () =
  (* The paper's Reno sketch must be in the {+,*} bucket's enumeration. *)
  let enc = Abg_enum.Encode.create Catalog.reno in
  let bucket = [ Component.Op_add; Component.Op_mul ] in
  let target_found = ref false in
  let continue = ref true in
  let budget = ref 5000 in
  while !continue && !budget > 0 do
    decr budget;
    match Abg_enum.Encode.next ~bucket enc with
    | Some sk -> begin
        (* CWND + c * reno-inc, modulo hole numbering and operand order. *)
        match Simplify.simplify sk with
        | Expr.Add (Expr.Cwnd, Expr.Mul (Expr.Hole _, Expr.Macro Macro.Reno_inc))
        | Expr.Add (Expr.Cwnd, Expr.Mul (Expr.Macro Macro.Reno_inc, Expr.Hole _))
        | Expr.Add (Expr.Mul (Expr.Hole _, Expr.Macro Macro.Reno_inc), Expr.Cwnd)
        | Expr.Add (Expr.Mul (Expr.Macro Macro.Reno_inc, Expr.Hole _), Expr.Cwnd)
          ->
            target_found := true;
            continue := false
        | _ -> ()
      end
    | None -> continue := false
  done;
  Alcotest.(check bool) "reno sketch reachable" true !target_found

let test_stats_and_vars () =
  let enc = Abg_enum.Encode.create Catalog.reno in
  ignore (Abg_enum.Encode.next enc);
  let returned, _ = Abg_enum.Encode.stats enc in
  Alcotest.(check int) "one returned" 1 returned;
  Alcotest.(check bool) "vars allocated" true (Abg_enum.Encode.num_vars enc > 100)

let test_bucket_of_sketch_partition () =
  (* Enumerated sketches across different buckets never collide. *)
  let enc = Abg_enum.Encode.create Catalog.reno in
  let enc2 = Abg_enum.Encode.create Catalog.reno in
  let b1 = [ Component.Op_add ] in
  let b2 = [ Component.Op_add; Component.Op_mul ] in
  let from_b1 = List.filter_map (fun _ -> Abg_enum.Encode.next ~bucket:b1 enc) (List.init 10 Fun.id) in
  let from_b2 = List.filter_map (fun _ -> Abg_enum.Encode.next ~bucket:b2 enc2) (List.init 10 Fun.id) in
  List.iter
    (fun s1 ->
      List.iter
        (fun s2 ->
          Alcotest.(check bool) "disjoint" false (Expr.equal_num s1 s2))
        from_b2)
    from_b1

let suites =
  [
    ( "enum.shape",
      [ Alcotest.test_case "indexing" `Quick test_shape_indexing ] );
    ( "enum.count",
      [
        Alcotest.test_case "monotone in depth" `Quick test_count_monotone_in_depth;
        Alcotest.test_case "depth zero" `Quick test_count_depth_zero;
        Alcotest.test_case "leaves only" `Quick test_count_leaf_only;
      ] );
    ( "enum.buckets",
      [
        Alcotest.test_case "feasibility" `Quick test_buckets_feasibility;
        Alcotest.test_case "reno count" `Quick test_buckets_count_reno;
      ] );
    ( "enum.encode",
      [
        Alcotest.test_case "distinct models" `Quick test_enumerate_distinct;
        Alcotest.test_case "well-formed sketches" `Quick test_enumerate_well_formed;
        Alcotest.test_case "bucket restriction" `Quick test_enumerate_bucket_restriction;
        Alcotest.test_case "empty bucket" `Quick test_enumerate_empty_bucket;
        Alcotest.test_case "micro-DSL exhaustion" `Quick test_enumerate_exhaustion_micro_dsl;
        Alcotest.test_case "reno sketch reachable" `Slow test_enumerate_finds_reno_shape;
        Alcotest.test_case "stats" `Quick test_stats_and_vars;
        Alcotest.test_case "buckets partition" `Quick test_bucket_of_sketch_partition;
      ] );
  ]
