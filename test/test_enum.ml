(* Tests for the SAT-based sketch enumeration: shapes, counting, buckets
   and the encoding's guarantees (sorts, units, budgets, no duplicates,
   no simplifiable output). *)

open Abg_dsl

let test_shape_indexing () =
  Alcotest.(check int) "depth-3 nodes" 13 (Abg_enum.Shape.num_nodes ~depth:3);
  Alcotest.(check int) "depth-4 nodes" 40 (Abg_enum.Shape.num_nodes ~depth:4);
  Alcotest.(check int) "child" 1 (Abg_enum.Shape.child 0 0);
  Alcotest.(check int) "parent" 0 (Abg_enum.Shape.parent 3);
  Alcotest.(check int) "position" 2 (Abg_enum.Shape.position 3);
  for i = 1 to 39 do
    Alcotest.(check int) "parent/child inverse" i
      (Abg_enum.Shape.child (Abg_enum.Shape.parent i) (Abg_enum.Shape.position i))
  done;
  Alcotest.(check int) "root level" 0 (Abg_enum.Shape.level 0);
  Alcotest.(check int) "level of node 4" 2 (Abg_enum.Shape.level 4)

let test_count_monotone_in_depth () =
  let components = Catalog.reno.Catalog.components in
  let c3 = Abg_enum.Count.universe_at ~components ~depth:3 in
  let c4 = Abg_enum.Count.universe_at ~components ~depth:4 in
  Alcotest.(check bool) "positive" true (c3 > 0.0);
  Alcotest.(check bool) "grows with depth" true (c4 > c3)

let test_count_depth_zero () =
  Alcotest.(check (float 0.0)) "no trees at depth 0" 0.0
    (Abg_enum.Count.universe_at ~components:Catalog.reno.Catalog.components
       ~depth:0)

let test_count_leaf_only () =
  (* Depth 1: exactly the num-sorted leaves. *)
  let components = Catalog.reno.Catalog.components in
  let leaves =
    List.length (List.filter (fun c -> Component.arity c = 0) components)
  in
  Alcotest.(check (float 0.0)) "leaves" (float_of_int leaves)
    (Abg_enum.Count.universe_at ~components ~depth:1)

let test_buckets_feasibility () =
  let buckets = Abg_enum.Buckets.all Catalog.reno in
  Alcotest.(check bool) "empty bucket included" true
    (List.exists (fun b -> b = []) buckets);
  List.iter
    (fun b ->
      let has_ite = List.exists (Component.equal Component.Op_ite) b in
      let has_bool =
        List.exists
          (fun c -> Component.sort c = Component.Bool && Component.is_operator c)
          b
      in
      Alcotest.(check bool) "ite iff bool op" true (has_ite = has_bool))
    buckets

let test_buckets_count_reno () =
  (* 4 arithmetic ops (16 subsets) x (no conditional, or ite with any
     non-empty subset of 3 comparisons = 7): 16 * 8 = 128. *)
  Alcotest.(check int) "reno bucket count" 128
    (List.length (Abg_enum.Buckets.all Catalog.reno))

let test_enumerate_distinct () =
  let enc = Abg_enum.Encode.create Catalog.reno in
  let seen = ref [] in
  for _ = 1 to 60 do
    match Abg_enum.Encode.next enc with
    | Some sk ->
        Alcotest.(check bool) "not seen before" false
          (List.exists (Expr.equal_num sk) !seen);
        seen := sk :: !seen
    | None -> ()
  done

let test_enumerate_well_formed () =
  let dsl = Catalog.reno in
  let enc = Abg_enum.Encode.create dsl in
  for _ = 1 to 60 do
    match Abg_enum.Encode.next enc with
    | Some sk ->
        Alcotest.(check bool) "depth budget" true
          (Expr.depth sk <= dsl.Catalog.max_depth);
        Alcotest.(check bool) "node budget" true
          (Expr.size sk <= dsl.Catalog.max_nodes);
        Alcotest.(check bool) "unit-checked" true
          (Unit_check.check sk ~expected:Abg_util.Units.bytes);
        Alcotest.(check bool) "not simplifiable" false
          (Simplify.is_simplifiable sk)
    | None -> ()
  done

let test_enumerate_bucket_restriction () =
  let enc = Abg_enum.Encode.create Catalog.reno in
  let bucket = [ Component.Op_add; Component.Op_mul ] in
  let sorted = List.sort Component.compare bucket in
  for _ = 1 to 25 do
    match Abg_enum.Encode.next ~bucket enc with
    | Some sk ->
        Alcotest.(check bool) "exact operator set" true
          (Abg_enum.Buckets.equal (Abg_enum.Buckets.of_sketch sk) sorted)
    | None -> ()
  done

let test_enumerate_empty_bucket () =
  (* Six operators cannot fit in seven nodes together with their leaves. *)
  let enc = Abg_enum.Encode.create Catalog.reno in
  let bucket =
    [ Component.Op_add; Component.Op_sub; Component.Op_mul; Component.Op_div;
      Component.Op_ite; Component.Op_lt ]
  in
  Alcotest.(check bool) "unsatisfiable bucket" true
    (Abg_enum.Encode.next ~bucket enc = None)

let micro_dsl =
  (* cwnd/mss/add at depth 2, <= 3 nodes. Non-simplifiable num-trees:
     cwnd, mss, and the adds over distinct/same leaves: cwnd+cwnd,
     cwnd+mss, mss+cwnd, mss+mss — of which cwnd+mss and mss+cwnd are
     commutative duplicates, one canonical form. Total 5. *)
  {
    Catalog.name = "micro";
    components =
      [ Component.Leaf_cwnd; Component.Leaf_signal Signal.Mss;
        Component.Op_add ];
    max_depth = 2;
    max_nodes = 3;
    constant_pool = [| 1.0 |];
    unit_check = true;
  }

let exhaust ?bucket ?(cap = 100_000) enc =
  let acc = ref [] in
  let continue = ref true in
  let budget = ref cap in
  while !continue && !budget > 0 do
    decr budget;
    match Abg_enum.Encode.next ?bucket enc with
    | Some sk -> acc := sk :: !acc
    | None -> continue := false
  done;
  Alcotest.(check bool) "enumeration terminated" true (not !continue);
  List.rev !acc

let test_enumerate_exhaustion_micro_dsl () =
  let enc = Abg_enum.Encode.create micro_dsl in
  let count = List.length (exhaust enc) in
  Alcotest.(check int) "exhaustive count" 5 count;
  (* With in-encoding symmetry breaking the solver never even produces
     the mss+cwnd model: the duplicate counter stays at zero. *)
  let dup = List.assoc "duplicate" (Abg_enum.Encode.prune_stats enc) in
  Alcotest.(check int) "no commutative duplicate enumerated" 0 dup

let test_enumerate_exhaustion_micro_dsl_no_symmetry () =
  (* Symmetry breaking off restores the enumerate-then-fold behaviour:
     same 5 canonical sketches, but the commutative duplicate costs an
     enumerated-and-folded model, visible in the counter. *)
  let enc = Abg_enum.Encode.create ~symmetry:false micro_dsl in
  Alcotest.(check int) "exhaustive count" 5 (List.length (exhaust enc));
  let dup = List.assoc "duplicate" (Abg_enum.Encode.prune_stats enc) in
  Alcotest.(check int) "one commutative duplicate" 1 dup

let test_enumerate_finds_reno_shape () =
  (* The paper's Reno sketch must be in the {+,*} bucket's enumeration. *)
  let enc = Abg_enum.Encode.create Catalog.reno in
  let bucket = [ Component.Op_add; Component.Op_mul ] in
  let target_found = ref false in
  let continue = ref true in
  let budget = ref 5000 in
  while !continue && !budget > 0 do
    decr budget;
    match Abg_enum.Encode.next ~bucket enc with
    | Some sk -> begin
        (* CWND + c * reno-inc, modulo hole numbering and operand order. *)
        match Simplify.simplify sk with
        | Expr.Add (Expr.Cwnd, Expr.Mul (Expr.Hole _, Expr.Macro Macro.Reno_inc))
        | Expr.Add (Expr.Cwnd, Expr.Mul (Expr.Macro Macro.Reno_inc, Expr.Hole _))
        | Expr.Add (Expr.Mul (Expr.Hole _, Expr.Macro Macro.Reno_inc), Expr.Cwnd)
        | Expr.Add (Expr.Mul (Expr.Macro Macro.Reno_inc, Expr.Hole _), Expr.Cwnd)
          ->
            target_found := true;
            continue := false
        | _ -> ()
      end
    | None -> continue := false
  done;
  Alcotest.(check bool) "reno sketch reachable" true !target_found

(* -- Symmetry-breaking contract: the in-encoding lex-leader circuit must
   change only *how* duplicates are removed, never *what* is enumerated. -- *)

let canonical_set sketches =
  List.sort_uniq String.compare (List.map Pretty.to_string sketches)

let richer_dsl =
  (* Small enough to exhaust in milliseconds, rich enough to exercise
     nested commutative operators, holes and both symmetric/asymmetric
     arities. *)
  {
    Catalog.name = "richer";
    components =
      [ Component.Leaf_cwnd; Component.Leaf_signal Signal.Mss;
        Component.Leaf_const; Component.Op_add; Component.Op_mul;
        Component.Op_sub ];
    max_depth = 3;
    max_nodes = 5;
    constant_pool = [| 1.0; 2.0 |];
    unit_check = true;
  }

let test_symmetry_completeness_exhaustive () =
  (* Symmetry on vs off: identical canonical sketch sets. *)
  let on = exhaust (Abg_enum.Encode.create ~symmetry:true richer_dsl) in
  let off = exhaust (Abg_enum.Encode.create ~symmetry:false richer_dsl) in
  Alcotest.(check (list string))
    "identical canonical sketch sets" (canonical_set off) (canonical_set on);
  Alcotest.(check int) "no duplicates on either side"
    (List.length (canonical_set on))
    (List.length on)

let test_symmetry_raw_stream_canonical () =
  (* With symmetry on, even the unfiltered model stream contains no
     commutative duplicates: every decoded sketch is already its own
     canonical form, and no two decoded sketches share one. *)
  let enc = Abg_enum.Encode.create ~symmetry:true richer_dsl in
  let seen = ref [] in
  let continue = ref true in
  while !continue do
    match Abg_enum.Encode.next_raw enc with
    | None -> continue := false
    | Some sk ->
        let canon = Abg_analysis.Canonical.normalize sk in
        Alcotest.(check bool) "decoded sketch already canonical" true
          (Expr.equal_num canon sk);
        Alcotest.(check bool) "no canonical collision in raw stream" false
          (List.exists (Expr.equal_num canon) !seen);
        seen := canon :: !seen
  done;
  Alcotest.(check bool) "raw stream non-empty" true (!seen <> [])

let prop_symmetry_completeness_random =
  (* Random sub-catalogs and budgets: the exhaustive canonical sketch set
     never depends on the symmetry flag. *)
  let pool =
    [| Component.Leaf_cwnd; Component.Leaf_signal Signal.Mss;
       Component.Leaf_signal Signal.Rtt; Component.Leaf_const;
       Component.Leaf_macro Macro.Reno_inc; Component.Op_add;
       Component.Op_mul; Component.Op_sub; Component.Op_div |]
  in
  let gen =
    QCheck.Gen.triple
      (QCheck.Gen.int_bound ((1 lsl Array.length pool) - 1))
      (QCheck.Gen.int_range 1 5)
      (QCheck.Gen.int_range 2 3)
  in
  let arb = QCheck.make gen ~print:(fun (m, n, d) ->
      Printf.sprintf "mask=%d max_nodes=%d max_depth=%d" m n d)
  in
  QCheck.Test.make ~name:"symmetry on/off: identical canonical sets"
    ~count:40 arb (fun (mask, max_nodes, max_depth) ->
      let components =
        (* Always include cwnd so the root has a num leaf available. *)
        Component.Leaf_cwnd
        :: List.filteri (fun i _ -> mask land (1 lsl i) <> 0)
             (Array.to_list pool)
        |> List.sort_uniq Component.compare
      in
      let dsl =
        {
          Catalog.name = "qcheck";
          components;
          max_depth;
          max_nodes;
          constant_pool = [| 1.0; 2.0 |];
          unit_check = true;
        }
      in
      let on = exhaust (Abg_enum.Encode.create ~symmetry:true dsl) in
      let off = exhaust (Abg_enum.Encode.create ~symmetry:false dsl) in
      canonical_set on = canonical_set off)

let prop_symmetry_completeness_buckets =
  (* Same contract, restricted to a random bucket of the Reno catalog
     (small node budget keeps exhaustion fast). *)
  let dsl = { Catalog.reno with Catalog.max_nodes = 5 } in
  let buckets = Array.of_list (Abg_enum.Buckets.all dsl) in
  let arb =
    QCheck.make
      (QCheck.Gen.int_bound (Array.length buckets - 1))
      ~print:(fun i ->
        String.concat ","
          (List.map
             (fun c -> Format.asprintf "%a" Component.pp c)
             buckets.(i)))
  in
  QCheck.Test.make ~name:"symmetry on/off: identical bucket sets" ~count:15
    arb (fun i ->
      let bucket = buckets.(i) in
      let on =
        exhaust ~bucket (Abg_enum.Encode.create ~symmetry:true dsl)
      in
      let off =
        exhaust ~bucket (Abg_enum.Encode.create ~symmetry:false dsl)
      in
      canonical_set on = canonical_set off)

(* -- One persistent solver: bucket switching, retirement, check. -- *)

let test_shared_encoder_bucket_switching () =
  (* Interleave two buckets on a single encoder: each returned sketch
     lands in the requested bucket and no sketch repeats. *)
  let enc = Abg_enum.Encode.create Catalog.reno in
  let b1 = [ Component.Op_add ] in
  let b2 = [ Component.Op_add; Component.Op_mul ] in
  let seen = ref [] in
  for i = 1 to 20 do
    let bucket = if i mod 2 = 0 then b1 else b2 in
    match Abg_enum.Encode.next ~bucket enc with
    | None -> ()
    | Some sk ->
        Alcotest.(check bool) "sketch in requested bucket" true
          (Abg_enum.Buckets.equal
             (Abg_enum.Buckets.of_sketch sk)
             (List.sort Component.compare bucket));
        Alcotest.(check bool) "never repeated" false
          (List.exists (Expr.equal_num sk) !seen);
        seen := sk :: !seen
  done;
  Alcotest.(check bool) "both buckets produced" true (List.length !seen >= 10)

let test_retire_bucket_no_repeats () =
  (* Exhaust a bucket, retire it, enumerate it again: the fresh blocking
     group re-decodes old models but the canonical seen-table catches
     every one — nothing is returned twice. *)
  let enc = Abg_enum.Encode.create micro_dsl in
  let bucket = [ Component.Op_add ] in
  let first = exhaust ~bucket enc in
  Alcotest.(check bool) "bucket non-empty" true (first <> []);
  Abg_enum.Encode.retire_bucket enc bucket;
  let again = exhaust ~bucket enc in
  Alcotest.(check int) "nothing returned twice after retirement" 0
    (List.length again);
  (* Retiring an unknown bucket is a no-op. *)
  Abg_enum.Encode.retire_bucket enc [ Component.Op_mul ]

let test_check_bucket () =
  let enc = Abg_enum.Encode.create micro_dsl in
  let bucket = [ Component.Op_add ] in
  Alcotest.(check bool) "fresh bucket satisfiable" true
    (Abg_enum.Encode.check_bucket enc bucket);
  ignore (exhaust ~bucket enc);
  Alcotest.(check bool) "exhausted bucket unsatisfiable" false
    (Abg_enum.Encode.check_bucket enc bucket)

let test_solver_stats_exposed () =
  let enc = Abg_enum.Encode.create Catalog.reno in
  ignore (Abg_enum.Encode.next enc);
  let st = Abg_enum.Encode.solver_stats enc in
  Alcotest.(check bool) "propagations counted" true
    (st.Abg_sat.Solver.propagations > 0)

(* Pinned decode regression (first sketches of the Reno enumeration):
   guards the determinism contract — fixed seeds plus identical clause
   order must reproduce this exact sequence bit-for-bit. Regenerate only
   on a deliberate encoding or heuristic change. *)
let pinned_reno_prefix : string list =
  [
    "CWND";
    "acked";
    "mss";
    "reno-inc";
    "({reno-inc % time-since-loss = 0} ? reno-inc : acked)";
    "({reno-inc % c1 = 0} ? reno-inc : acked)";
    "({reno-inc % acked = 0} ? reno-inc : acked)";
    "({reno-inc % mss = 0} ? reno-inc : acked)";
    "({reno-inc % CWND = 0} ? reno-inc : acked)";
    "({time-since-loss % c1 = 0} ? reno-inc : acked)";
    "({time-since-loss % reno-inc = 0} ? reno-inc : acked)";
    "({time-since-loss % CWND = 0} ? reno-inc : acked)";
    "({time-since-loss % mss = 0} ? reno-inc : acked)";
    "({time-since-loss % acked = 0} ? reno-inc : acked)";
    "({acked % reno-inc = 0} ? reno-inc : acked)";
    "({acked % CWND = 0} ? reno-inc : acked)";
    "({acked % mss = 0} ? reno-inc : acked)";
    "({acked % time-since-loss = 0} ? reno-inc : acked)";
    "({acked % c1 = 0} ? reno-inc : acked)";
    "({mss % c1 = 0} ? reno-inc : acked)";
    "({mss % reno-inc = 0} ? reno-inc : acked)";
    "({mss % CWND = 0} ? reno-inc : acked)";
    "({mss % acked = 0} ? reno-inc : acked)";
    "({mss % time-since-loss = 0} ? reno-inc : acked)";
    "({c1 % time-since-loss = 0} ? reno-inc : acked)";
    "({c1 % CWND = 0} ? reno-inc : acked)";
    "({c1 % reno-inc = 0} ? reno-inc : acked)";
    "({c1 % acked = 0} ? reno-inc : acked)";
    "({c1 % mss = 0} ? reno-inc : acked)";
    "({CWND % c1 = 0} ? reno-inc : acked)";
    "({CWND % acked = 0} ? reno-inc : acked)";
    "({CWND % time-since-loss = 0} ? reno-inc : acked)";
  ]

let test_pinned_reno_prefix () =
  let enc = Abg_enum.Encode.create Catalog.reno in
  let got =
    List.filter_map (fun _ -> Abg_enum.Encode.next enc)
      (List.init (List.length pinned_reno_prefix) Fun.id)
    |> List.map Pretty.to_string
  in
  Alcotest.(check (list string)) "first Reno sketches" pinned_reno_prefix got

let test_stats_and_vars () =
  let enc = Abg_enum.Encode.create Catalog.reno in
  ignore (Abg_enum.Encode.next enc);
  let returned, _ = Abg_enum.Encode.stats enc in
  Alcotest.(check int) "one returned" 1 returned;
  Alcotest.(check bool) "vars allocated" true (Abg_enum.Encode.num_vars enc > 100)

let test_bucket_of_sketch_partition () =
  (* Enumerated sketches across different buckets never collide. *)
  let enc = Abg_enum.Encode.create Catalog.reno in
  let enc2 = Abg_enum.Encode.create Catalog.reno in
  let b1 = [ Component.Op_add ] in
  let b2 = [ Component.Op_add; Component.Op_mul ] in
  let from_b1 = List.filter_map (fun _ -> Abg_enum.Encode.next ~bucket:b1 enc) (List.init 10 Fun.id) in
  let from_b2 = List.filter_map (fun _ -> Abg_enum.Encode.next ~bucket:b2 enc2) (List.init 10 Fun.id) in
  List.iter
    (fun s1 ->
      List.iter
        (fun s2 ->
          Alcotest.(check bool) "disjoint" false (Expr.equal_num s1 s2))
        from_b2)
    from_b1

let suites =
  [
    ( "enum.shape",
      [ Alcotest.test_case "indexing" `Quick test_shape_indexing ] );
    ( "enum.count",
      [
        Alcotest.test_case "monotone in depth" `Quick test_count_monotone_in_depth;
        Alcotest.test_case "depth zero" `Quick test_count_depth_zero;
        Alcotest.test_case "leaves only" `Quick test_count_leaf_only;
      ] );
    ( "enum.buckets",
      [
        Alcotest.test_case "feasibility" `Quick test_buckets_feasibility;
        Alcotest.test_case "reno count" `Quick test_buckets_count_reno;
      ] );
    ( "enum.encode",
      [
        Alcotest.test_case "distinct models" `Quick test_enumerate_distinct;
        Alcotest.test_case "well-formed sketches" `Quick test_enumerate_well_formed;
        Alcotest.test_case "bucket restriction" `Quick test_enumerate_bucket_restriction;
        Alcotest.test_case "empty bucket" `Quick test_enumerate_empty_bucket;
        Alcotest.test_case "micro-DSL exhaustion" `Quick test_enumerate_exhaustion_micro_dsl;
        Alcotest.test_case "micro-DSL exhaustion (no symmetry)" `Quick
          test_enumerate_exhaustion_micro_dsl_no_symmetry;
        Alcotest.test_case "reno sketch reachable" `Slow test_enumerate_finds_reno_shape;
        Alcotest.test_case "stats" `Quick test_stats_and_vars;
        Alcotest.test_case "buckets partition" `Quick test_bucket_of_sketch_partition;
        Alcotest.test_case "pinned reno prefix" `Quick test_pinned_reno_prefix;
      ] );
    ( "enum.symmetry",
      [
        Alcotest.test_case "completeness (exhaustive)" `Quick
          test_symmetry_completeness_exhaustive;
        Alcotest.test_case "raw stream canonical" `Quick
          test_symmetry_raw_stream_canonical;
      ]
      @ List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [
            prop_symmetry_completeness_random;
            prop_symmetry_completeness_buckets;
          ] );
    ( "enum.incremental",
      [
        Alcotest.test_case "shared encoder bucket switching" `Quick
          test_shared_encoder_bucket_switching;
        Alcotest.test_case "retire bucket" `Quick test_retire_bucket_no_repeats;
        Alcotest.test_case "check bucket" `Quick test_check_bucket;
        Alcotest.test_case "solver stats" `Quick test_solver_stats_exposed;
      ] );
  ]
