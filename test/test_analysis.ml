(* Tests for the analysis layer: the interval domain, the abstract
   interpreter's soundness contract (concrete Eval is contained in the
   derived interval for every environment inside the box), the dead-sketch
   prune reasons, commutative canonicalization, and the lint rules. *)

open Abg_dsl
open Expr
module I = Abg_util.Interval
module A = Abg_analysis.Absint
module C = Abg_analysis.Canonical
module L = Abg_analysis.Lint

let c v = Const v
let ri = Macro Macro.Reno_inc
let box = A.default_box ()

(* -- Interval domain -- *)

let test_interval_basics () =
  let i = I.v 1.0 3.0 in
  Alcotest.(check bool) "contains" true (I.contains i 2.0);
  Alcotest.(check bool) "below" false (I.contains i 0.5);
  Alcotest.(check bool) "nan off" false (I.contains i Float.nan);
  Alcotest.(check bool) "nan on" true (I.contains (I.with_nan i) Float.nan);
  Alcotest.(check bool) "flipped rejected" true
    (try
       ignore (I.v 2.0 1.0);
       false
     with Invalid_argument _ -> true);
  let j = I.join i (I.v 10.0 20.0) in
  Alcotest.(check bool) "join hull" true
    (I.contains j 1.0 && I.contains j 20.0 && I.contains j 5.0)

let test_interval_safe_div () =
  (* A denominator straddling zero contributes the guard's 0 plus both
     sign-definite quotient ranges. *)
  let q = I.safe_div (I.const 1.0) (I.v (-1.0) 1.0) in
  Alcotest.(check bool) "guard zero" true (I.contains q 0.0);
  Alcotest.(check bool) "positive side" true
    (I.contains q (Abg_util.Floatx.safe_div 1.0 0.5));
  Alcotest.(check bool) "negative side" true
    (I.contains q (Abg_util.Floatx.safe_div 1.0 (-0.5)));
  (* Denominator provably inside the guard: exactly {0}. *)
  let z = I.safe_div (I.v 1.0 2.0) (I.v (-1e-13) 1e-13) in
  Alcotest.(check (float 0.0)) "guarded lo" 0.0 (z : I.t).I.lo;
  Alcotest.(check (float 0.0)) "guarded hi" 0.0 z.I.hi

let test_interval_verdicts () =
  Alcotest.(check bool) "lt true" true (I.lt (I.v 0.0 1.0) (I.v 2.0 3.0) = I.True);
  Alcotest.(check bool) "lt false" true (I.lt (I.v 2.0 3.0) (I.v 0.0 1.0) = I.False);
  Alcotest.(check bool) "lt overlap" true
    (I.lt (I.v 0.0 2.0) (I.v 1.0 3.0) = I.Unknown);
  (* NaN comparisons are false, so possible NaN blocks True but not False. *)
  Alcotest.(check bool) "nan blocks true" true
    (I.lt (I.with_nan (I.v 0.0 1.0)) (I.v 2.0 3.0) = I.Unknown);
  Alcotest.(check bool) "nan keeps false" true
    (I.lt (I.with_nan (I.v 2.0 3.0)) (I.v 0.0 1.0) = I.False);
  Alcotest.(check bool) "mod_eq zero numerator" true
    (I.mod_eq (I.const 0.0) (I.const 2.0) = I.True);
  Alcotest.(check bool) "mod_eq tiny divisor" true
    (I.mod_eq (I.v 1.0 2.0) (I.v (-1e-10) 1e-10) = I.False)

(* -- Generators -- *)

(* Expressions without holes: every operator the evaluator has, plus
   zero and negative constants to hit the safe-division guard. Cube
   towers routinely overflow to inf/NaN, which is exactly what the
   domain's NaN flag and the handler floor rules must absorb. *)
let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ return Cwnd; return ri; return (Macro Macro.Vegas_diff);
        return (Macro Macro.Htcp_diff); return (Macro Macro.Rtts_since_loss);
        return (Signal Signal.Mss); return (Signal Signal.Rtt);
        return (Signal Signal.Min_rtt); return (Signal Signal.Ack_rate);
        return (Signal Signal.Delay_gradient); return (Signal Signal.Wmax);
        return (Const 0.0);
        map (fun v -> Const v) (float_range (-4.0) 8.0) ]
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then leaf
          else
            frequency
              [ (2, leaf);
                (2, map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2)));
                (2, map2 (fun a b -> Sub (a, b)) (self (n / 2)) (self (n / 2)));
                (2, map2 (fun a b -> Mul (a, b)) (self (n / 2)) (self (n / 2)));
                (2, map2 (fun a b -> Div (a, b)) (self (n / 2)) (self (n / 2)));
                (1, map (fun a -> Cube a) (self (n - 1)));
                (1, map (fun a -> Cbrt a) (self (n - 1)));
                ( 1,
                  map3
                    (fun a b t -> Ite (Lt (a, b), t, Cwnd))
                    (self (n / 3)) (self (n / 3)) (self (n / 3)) );
                ( 1,
                  map3
                    (fun a b t -> Ite (Gt (a, b), t, b))
                    (self (n / 3)) (self (n / 3)) (self (n / 3)) );
                ( 1,
                  map3
                    (fun a b t -> Ite (Mod_eq (a, b), t, a))
                    (self (n / 3)) (self (n / 3)) (self (n / 3)) ) ])
        (min n 10))

(* A value inside [lo, hi], with the endpoints and the low decades
   over-weighted (a uniform draw over [0, 1e12] almost never lands in
   the physically common range). *)
let gen_in_range lo hi =
  let open QCheck.Gen in
  let near = Float.min hi (lo +. 10.0) in
  frequency
    [ (3, float_range lo hi); (3, float_range lo near); (1, return lo);
      (1, return hi) ]

(* Environments drawn inside the physical box the analysis assumes:
   every field within Signal.range, cwnd within the replay clamp. *)
let gen_box_env =
  let open QCheck.Gen in
  let r s =
    let lo, hi = Signal.range s in
    gen_in_range lo hi
  in
  gen_in_range 1.0 1e12 >>= fun cwnd ->
  r Signal.Mss >>= fun mss ->
  r Signal.Acked_bytes >>= fun acked_bytes ->
  r Signal.Time_since_loss >>= fun time_since_loss ->
  r Signal.Rtt >>= fun rtt ->
  r Signal.Min_rtt >>= fun min_rtt ->
  r Signal.Max_rtt >>= fun max_rtt ->
  r Signal.Ack_rate >>= fun ack_rate ->
  r Signal.Rtt_gradient >>= fun rtt_gradient ->
  r Signal.Delay_gradient >>= fun delay_gradient ->
  r Signal.Wmax >>= fun wmax ->
  return
    { Env.cwnd; mss; acked_bytes; time_since_loss; rtt; min_rtt; max_rtt;
      ack_rate; rtt_gradient; delay_gradient; wmax }

let arbitrary_expr_box_env =
  QCheck.make
    ~print:(fun (e, env) ->
      Printf.sprintf "%s in cwnd=%g mss=%g rtt=%g" (Pretty.num e) env.Env.cwnd
        env.Env.mss env.Env.rtt)
    QCheck.Gen.(pair gen_expr gen_box_env)

(* -- Soundness: concrete evaluation is inside the derived interval -- *)

let prop_absint_sound =
  QCheck.Test.make ~name:"Eval.num is contained in Absint.num" ~count:2000
    arbitrary_expr_box_env (fun (e, env) ->
      I.contains (A.num box e) (Eval.num env e))

let prop_absint_boolean_sound =
  QCheck.Test.make ~name:"definite guard verdicts agree with Eval.boolean"
    ~count:1000
    (QCheck.make QCheck.Gen.(pair (pair gen_expr gen_expr) gen_box_env))
    (fun ((a, b), env) ->
      List.for_all
        (fun g ->
          match A.boolean box g with
          | I.True -> Eval.boolean env g
          | I.False -> not (Eval.boolean env g)
          | I.Unknown -> true)
        [ Lt (a, b); Gt (a, b); Mod_eq (a, b) ])

(* -- Soundness: pruned sketches replay as their claimed equivalent -- *)

let dead_floor = Sub (c 0.0, Cwnd)
let dead_nonfinite = Cube (Cube (Cube (Cube (Mul (c 1e10, Cwnd)))))
let dead_denominator = Add (Cwnd, Div (Signal Signal.Mss, c 0.0))
let dead_guard = Add (Cwnd, Ite (Gt (Signal Signal.Rtt, c 200.0), c 1.0, c 2.0))

let prop_pruned_replay_as_floor =
  (* Collapses_to_floor / Always_nonfinite: the handler is the constant
     one-MSS floor on every in-box environment. *)
  QCheck.Test.make ~name:"pruned sketches replay as the one-MSS floor"
    ~count:500
    (QCheck.make gen_box_env)
    (fun env ->
      List.for_all
        (fun sk -> Float.equal (Eval.handler sk env) env.Env.mss)
        [ dead_floor; dead_nonfinite ])

let prop_pruned_equivalents =
  (* Zero_denominator / Dead_guard: the sketch evaluates exactly like the
     strictly smaller handler the search retains anyway. *)
  QCheck.Test.make ~name:"pruned sketches match their smaller equivalent"
    ~count:500
    (QCheck.make gen_box_env)
    (fun env ->
      Float.equal
        (Eval.num env dead_denominator)
        (Eval.num env (Add (Cwnd, c 0.0)))
      && Float.equal
           (Eval.num env dead_guard)
           (Eval.num env (Add (Cwnd, c 2.0))))

let test_prune_reasons () =
  let reason e =
    Option.map (fun (r, _) -> A.reason_name r) (A.prune box e)
  in
  Alcotest.(check (option string)) "collapse" (Some "collapses-to-floor")
    (reason dead_floor);
  Alcotest.(check (option string)) "nonfinite" (Some "always-nonfinite")
    (reason dead_nonfinite);
  Alcotest.(check (option string)) "zero denominator"
    (Some "zero-denominator") (reason dead_denominator);
  Alcotest.(check (option string)) "dead guard" (Some "dead-guard")
    (reason dead_guard);
  Alcotest.(check (option string)) "live reno" None
    (reason (Add (Cwnd, Mul (c 0.7, ri))));
  Alcotest.(check (option string)) "live vegas" None
    (reason
       (Add (Cwnd, Ite (Lt (Macro Macro.Vegas_diff, c 1.0), Mul (c 0.7, ri), c 0.0))))

(* -- Simplify preserves evaluation -- *)

(* Cancellation rules like [(a + b) - a -> b] or [x / x -> 1] are
   algebraic, not floating-point identities. They are exact up to
   rounding that scales with the largest intermediate — and not even
   that when a cancelled divisor lands inside the evaluator's
   safe-division guard, a modulus inside the divisibility epsilon, or an
   intermediate overflows (inf - inf rewritten to 0). The audit below
   computes the property's exact hypothesis: [None] when the evaluation
   leaves the regime where the rewrites are identities, otherwise
   [Some max_magnitude] for the rounding tolerance. *)
let eval_audit env e =
  let m = ref 0.0 in
  let clean = ref true in
  let note v =
    if Float.is_finite v then begin
      let a = Float.abs v in
      if a > !m then m := a
    end
    else clean := false
  in
  let rec go e =
    note (Eval.num env e);
    match e with
    | Add (a, b) | Sub (a, b) ->
        go a;
        go b;
        (* Catastrophic cancellation: when the sum is many orders of
           magnitude below its operands, its value is dominated by the
           operands' roundoff (ulp of the large magnitude), and a
           cancelling rewrite like rtt - wmax + wmax = rtt may legally
           differ from it by far more than any result-scaled
           tolerance. *)
        let va = Eval.num env a and vb = Eval.num env b in
        let r = Eval.num env e in
        if Float.abs r < 1e-3 *. Float.max (Float.abs va) (Float.abs vb)
        then clean := false
    | Mul (a, b) -> go a; go b
    | Div (a, b) ->
        go a;
        go b;
        if Float.abs (Eval.num env b) < 1e-9 then clean := false
    | Cube a | Cbrt a -> go a
    | Ite (g, t, el) -> go_bool g; go t; go el
    | Cwnd | Signal _ | Macro _ | Const _ | Hole _ -> ()
  and go_bool = function
    | Lt (a, b) | Gt (a, b) ->
        go a;
        go b;
        (* A comparison decided by less than the rounding slack is not a
           robust hypothesis: the permissive simplifier's up-to-rounding
           cancellations (a + (b - a) = b, cbrt(x)^3 = x) may legally
           land on the other side of it and flip the branch. *)
        let va = Eval.num env a and vb = Eval.num env b in
        let slack =
          1e-9 *. (1.0 +. Float.max (Float.abs va) (Float.abs vb))
        in
        if Float.abs (va -. vb) <= slack then clean := false
    | Mod_eq (a, b) ->
        go a;
        go b;
        let x = Eval.num env a and y = Eval.num env b in
        if Float.abs y < 1e-9 then clean := false
        else begin
          (* The tolerant divisibility predicate folds fmod of the
             numerator: an ulp-level rewrite of either operand shifts
             the remainder by up to ~1e-9 * |x|, so the verdict is only
             robust when the remainder sits clear of both tolerance
             boundaries by that much (and the shift itself stays well
             under the modulus — a huge |x| / |y| ratio makes fmod
             chaotic under perturbation). *)
          let slack = 1e-9 *. (1.0 +. Float.abs x) in
          let r = Abg_util.Floatx.fmod x y in
          let tol = 0.05 *. Float.abs y in
          if
            slack >= 0.5 *. Float.abs y
            || Float.abs (r -. tol) <= slack
            || Float.abs (Float.abs y -. r -. tol) <= slack
          then clean := false
        end
  in
  go e;
  if !clean then Some !m else None

let close_up_to_magnitude env e before after =
  match eval_audit env e with
  | None -> true
  | Some maxmag ->
      let eps = 1e-9 *. (1.0 +. maxmag) in
      Float.abs (before -. after) <= eps

let prop_simplify_preserves_eval =
  QCheck.Test.make ~name:"simplify preserves Eval up to rounding"
    ~count:1000 arbitrary_expr_box_env (fun (e, env) ->
      let before = Eval.num env e in
      let after = Eval.num env (Simplify.simplify e) in
      close_up_to_magnitude env e before after)

let prop_facts_simplify_preserves_eval =
  (* The interval-fact oracle may additionally resolve guards that are
     constant over the box; for environments inside the box that is
     exact, so the same tolerance applies. *)
  QCheck.Test.make ~name:"interval-fact simplify preserves Eval in the box"
    ~count:1000 arbitrary_expr_box_env (fun (e, env) ->
      let before = Eval.num env e in
      let after = Eval.num env (A.simplify box e) in
      close_up_to_magnitude env e before after)

let test_facts_resolve_dead_guard () =
  (* The plain simplifier cannot decide {rtt > 200}; the box can. *)
  let e = Ite (Gt (Signal Signal.Rtt, c 200.0), Mul (c 2.0, Cwnd), Cwnd) in
  Alcotest.(check bool) "plain keeps the ite" true
    (Expr.equal_num (Simplify.simplify e) e);
  Alcotest.(check bool) "facts collapse it" true
    (Expr.equal_num (A.simplify box e) Cwnd)

let test_simplify_self_comparison () =
  (* Commutative-equality reasoning: a guard comparing an expression to a
     commuted copy of itself is decidable without intervals. *)
  let a = Add (Cwnd, Signal Signal.Mss) and b = Add (Signal Signal.Mss, Cwnd) in
  Alcotest.(check bool) "x < x is false" true
    (Expr.equal_num (Simplify.simplify (Ite (Lt (a, b), c 1.0, c 2.0))) (c 2.0));
  Alcotest.(check bool) "x % x = 0 is true" true
    (Expr.equal_num
       (Simplify.simplify (Ite (Mod_eq (a, b), c 1.0, c 2.0)))
       (c 1.0))

(* -- Canonicalization -- *)

let arbitrary_expr_any_env =
  (* Any finite-field environment, in or out of the box: normalization
     must be exactly semantics-preserving everywhere. *)
  QCheck.make
    ~print:(fun (e, _) -> Pretty.num e)
    QCheck.Gen.(
      pair gen_expr
        (map
           (fun l ->
             match l with
             | [ cwnd; mss; acked_bytes; time_since_loss; rtt; min_rtt;
                 max_rtt; ack_rate; rtt_gradient; delay_gradient; wmax ] ->
                 { Env.cwnd; mss; acked_bytes; time_since_loss; rtt; min_rtt;
                   max_rtt; ack_rate; rtt_gradient; delay_gradient; wmax }
             | _ -> assert false)
           (list_repeat 11
              (oneof
                 [ float_range 0.0 50000.0; return 0.0;
                   float_range (-10.0) 10.0 ]))))

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"normalize is idempotent" ~count:1000
    (QCheck.make ~print:Pretty.num gen_expr)
    (fun e -> Expr.equal_num (C.normalize (C.normalize e)) (C.normalize e))

let prop_normalize_merges_commuted =
  QCheck.Test.make ~name:"commuted operands share a normal form" ~count:1000
    (QCheck.make QCheck.Gen.(pair gen_expr gen_expr))
    (fun (a, b) -> C.equal (Add (a, b)) (Add (b, a)) && C.equal (Mul (a, b)) (Mul (b, a)))

let prop_normalize_preserves_eval =
  (* IEEE + and * are exactly commutative, so this is bit-exact (NaN
     compares equal to NaN under Float.equal). *)
  QCheck.Test.make ~name:"normalize preserves Eval bit-exactly" ~count:1000
    arbitrary_expr_any_env (fun (e, env) ->
      Float.equal (Eval.num env e) (Eval.num env (C.normalize e)))

let test_normalize_holes () =
  (* Holes are interchangeable for ordering and renumbered left-to-right
     after sorting, so hole labelling never splits a normal form. *)
  Alcotest.(check bool) "renumbered" true
    (Expr.equal_num
       (C.normalize (Mul (Hole 5, Add (Hole 2, Hole 5))))
       (Mul (Hole 0, Add (Hole 1, Hole 2))));
  Alcotest.(check bool) "labels do not split" true
    (C.equal (Add (Hole 3, Mul (Hole 1, Cwnd))) (Add (Hole 0, Mul (Hole 7, Cwnd))))

let test_tbl_intern () =
  let t = C.Tbl.create () in
  let id1, fresh1 = C.Tbl.intern t (Add (Cwnd, Signal Signal.Mss)) in
  let id2, fresh2 = C.Tbl.intern t (Add (Signal Signal.Mss, Cwnd)) in
  let id3, fresh3 = C.Tbl.intern t (Mul (Cwnd, Signal Signal.Mss)) in
  Alcotest.(check bool) "first is fresh" true fresh1;
  Alcotest.(check bool) "commuted copy is not" false fresh2;
  Alcotest.(check int) "same id" id1 id2;
  Alcotest.(check bool) "different operator is fresh" true fresh3;
  Alcotest.(check bool) "distinct id" true (id3 <> id1);
  Alcotest.(check int) "two normal forms" 2 (C.Tbl.length t)

(* -- Lint -- *)

let test_lint_showcase_coverage () =
  let ids =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (_, e) -> List.map (fun d -> d.L.rule) (L.check e))
         L.showcase)
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " demonstrated") true (List.mem id ids))
    [ "collapses-to-floor"; "always-nonfinite"; "zero-denominator";
      "dead-guard"; "possible-zero-denominator"; "possible-nan";
      "unbounded-window"; "simplifiable"; "non-canonical";
      "vacuous-guard"; "guard-implied"; "branch-equivalent" ];
  Alcotest.(check bool) "at least four rules" true (List.length ids >= 4)

let test_lint_errors_are_pruned () =
  (* Error severity is reserved for what the search prunes. (Not "iff":
     a dead guard also prunes — a smaller equivalent sketch exists — but
     lints as a warning, because the handler itself is legal.) *)
  List.iter
    (fun (name, e) ->
      if List.exists (fun d -> d.L.severity = L.Error) (L.check e) then
        Alcotest.(check bool) (name ^ ": error implies pruned") true
          (A.prune box e <> None))
    L.showcase

let test_lint_clean_handler () =
  (* A canonical, live handler produces no diagnostics at all. *)
  Alcotest.(check int) "no diags" 0
    (List.length (L.check (Add (Cwnd, Mul (ri, c 0.7)))))

(* -- Relational layer: Relint soundness, Equiv verdicts -- *)

module R = Abg_analysis.Relint
module Q = Abg_analysis.Equiv

let rel = R.default ()

(* Environments satisfying the zone: inside the box AND relationally
   ordered (min-rtt <= rtt <= max-rtt). [gen_box_env] draws the three
   rtt-family signals independently and routinely violates the ordering
   invariant the zone is seeded with, so it cannot exercise Relint's
   soundness contract. *)
let gen_zone_env =
  let open QCheck.Gen in
  gen_box_env >>= fun env ->
  let lo, hi = Signal.range Signal.Rtt in
  gen_in_range lo hi >>= fun r1 ->
  gen_in_range lo hi >>= fun r2 ->
  gen_in_range lo hi >>= fun r3 ->
  match List.sort Float.compare [ r1; r2; r3 ] with
  | [ a; b; c ] -> return { env with Env.min_rtt = a; rtt = b; max_rtt = c }
  | _ -> assert false

let arbitrary_expr_zone_env =
  QCheck.make
    ~print:(fun (e, env) ->
      Printf.sprintf "%s in cwnd=%g rtt=%g min-rtt=%g max-rtt=%g"
        (Pretty.num e) env.Env.cwnd env.Env.rtt env.Env.min_rtt
        env.Env.max_rtt)
    QCheck.Gen.(pair gen_expr gen_zone_env)

let prop_relint_sound =
  QCheck.Test.make ~name:"Eval.num is contained in Relint.num" ~count:2000
    arbitrary_expr_zone_env (fun (e, env) ->
      I.contains (R.num rel e) (Eval.num env e))

let prop_relint_boolean_sound =
  QCheck.Test.make
    ~name:"definite Relint verdicts agree with Eval.boolean on the zone"
    ~count:1000
    (QCheck.make QCheck.Gen.(pair (pair gen_expr gen_expr) gen_zone_env))
    (fun ((a, b), env) ->
      List.for_all
        (fun g ->
          match R.boolean rel g with
          | I.True -> Eval.boolean env g
          | I.False -> not (Eval.boolean env g)
          | I.Unknown -> true)
        [ Lt (a, b); Gt (a, b); Mod_eq (a, b) ])

let prop_relint_assume_sound =
  (* [assume rel g truth] must keep every zone environment on which [g]
     evaluates to [truth]: the refined intervals still contain the
     concrete result, and [None] is only sound if no such environment
     exists. *)
  QCheck.Test.make ~name:"Relint.assume keeps the satisfying environments"
    ~count:1000
    (QCheck.make
       QCheck.Gen.(pair (pair gen_expr (pair gen_expr gen_expr)) gen_zone_env))
    (fun ((e, (a, b)), env) ->
      List.for_all
        (fun g ->
          let truth = Eval.boolean env g in
          match R.assume rel g truth with
          | None -> false (* the witness env satisfies g at truth *)
          | Some r -> I.contains (R.num r e) (Eval.num env e))
        [ Lt (a, b); Gt (a, b) ])

let prop_relint_sample_env_in_zone =
  (* The replay cross-checks trust sample_env to stay inside the zone. *)
  QCheck.Test.make ~name:"Relint.sample_env satisfies the zone" ~count:500
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Abg_util.Rng.create seed in
      let env = R.sample_env rel rng in
      env.Env.min_rtt <= env.Env.rtt
      && env.Env.rtt <= env.Env.max_rtt
      && I.contains (R.signal_iv rel Signal.Rtt) env.Env.rtt
      && I.contains (R.cwnd_iv rel) env.Env.cwnd)

let prop_equiv_distinct_witness =
  (* Every Distinct verdict carries a replayed witness: the two sides
     evaluate to different raw values on it. *)
  QCheck.Test.make ~name:"Equiv.Distinct witnesses evaluate differently"
    ~count:400
    (QCheck.make
       ~print:(fun (a, b) ->
         Printf.sprintf "%s vs %s" (Pretty.num a) (Pretty.num b))
       QCheck.Gen.(pair gen_expr gen_expr))
    (fun (a, b) ->
      match Q.decide ~draws:64 ~icp_budget:64 rel a b with
      | Q.Distinct env ->
          not (Float.equal (Eval.num env a) (Eval.num env b))
      | Q.Equal | Q.Unknown _ -> true)

let prop_equiv_rnorm_bit_exact =
  (* The relational normal form promises bit-exact evaluation on every
     zone environment — it is what semantic subsumption dedups on. *)
  QCheck.Test.make ~name:"Equiv.rnorm preserves Eval bit-exactly on the zone"
    ~count:1000 arbitrary_expr_zone_env (fun (e, env) ->
      Float.equal (Eval.num env e) (Eval.num env (Q.rnorm rel e)))

let test_equiv_equal_matches_sampling () =
  (* Differential testing of the Equal verdict across the catalog: for
     every handler pair the prover calls Equal, 2000 zone-consistent
     draws must agree bit-for-bit (and known-identical pairs must indeed
     be proved Equal, so the check is not vacuous). *)
  let handlers =
    List.map (fun (n, e) -> ("synthesized/" ^ n, e))
      Abg_core.Fine_tuned.synthesized
    @ List.map (fun (n, e) -> ("fine-tuned/" ^ n, e))
        Abg_core.Fine_tuned.fine_tuned
  in
  let equal_pairs = ref 0 in
  let rng = Abg_util.Rng.create 0xD1FF in
  List.iteri
    (fun i (ni, a) ->
      List.iteri
        (fun j (nj, b) ->
          if j > i then
            match Q.decide rel a b with
            | Q.Equal ->
                incr equal_pairs;
                for _ = 1 to 2000 do
                  let env = R.sample_env rel rng in
                  Alcotest.(check bool)
                    (Printf.sprintf "%s = %s on a zone draw" ni nj)
                    true
                    (Float.equal (Eval.num env a) (Eval.num env b))
                done
            | Q.Distinct env ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s <> %s witness replays" ni nj)
                  true
                  (not (Float.equal (Eval.num env a) (Eval.num env b)))
            | Q.Unknown _ -> ())
        handlers)
    handlers;
  (* reno/westwood duplicates across the two tables guarantee hits. *)
  Alcotest.(check bool) "some pairs proved Equal" true (!equal_pairs >= 2)

let test_equiv_student5 () =
  (* The §5.6 headline: Student 5's vacuous conditional is provably the
     constant 2*mss — a cross-signal fact the interval domain cannot
     decide (beyond-paper result). *)
  let s5 =
    match Abg_core.Fine_tuned.find_synthesized "student5" with
    | Some e -> e
    | None -> Alcotest.fail "student5 missing from the catalog"
  in
  let two_mss = Mul (c 2.0, Signal Signal.Mss) in
  (match s5 with
  | Ite (g, _, _) ->
      Alcotest.(check bool) "Absint cannot decide the guard" true
        (A.boolean box g = I.Unknown);
      Alcotest.(check bool) "Relint proves it false" true
        (R.boolean rel g = I.False)
  | _ -> Alcotest.fail "student5 should be a conditional");
  Alcotest.(check bool) "Equiv proves s5 = 2*mss" true
    (Q.decide rel s5 two_mss = Q.Equal);
  Alcotest.(check bool) "lint flags vacuous-guard" true
    (List.exists (fun d -> d.L.rule = "vacuous-guard") (L.check s5))

let test_sound_simplify_guard_adjacent_cancellation () =
  (* The §9 caveat, resolved: a cancellation adjacent to a guard fires
     only when the zone proves the guard keeps the operands clear of the
     evaluator's safe-division regime. [acked > 0] refines acked to
     [0, _] (strict relaxed to non-strict) — NOT clear of the guard, so
     the sound simplifier must keep the quotient; [acked > mss] proves
     acked >= 400, so it may fold. The permissive simplifier folds both
     (the historical §4.1 behavior, unchanged). *)
  let acked = Signal Signal.Acked_bytes and mss = Signal Signal.Mss in
  let risky = Ite (Gt (acked, c 0.0), Div (acked, acked), c 1.0) in
  let safe = Ite (Gt (acked, mss), Div (acked, acked), c 1.0) in
  Alcotest.(check bool) "sound: risky quotient kept" true
    (Expr.equal_num (R.simplify rel risky) risky);
  Alcotest.(check bool) "sound: proven quotient folds" true
    (Expr.equal_num (R.simplify rel safe) (c 1.0));
  Alcotest.(check bool) "permissive folds both" true
    (Expr.equal_num (Simplify.simplify risky) (c 1.0)
    && Expr.equal_num (Simplify.simplify safe) (c 1.0));
  (* And the witness for the sound behavior: an environment where the
     rewrite would have been wrong — acked positive (the guard binds the
     then-branch) yet inside the evaluator's safe-division guard, so the
     quotient is 0, not 1. *)
  let env =
    QCheck.Gen.generate1 gen_zone_env |> fun e ->
    { e with Env.acked_bytes = 1e-13 }
  in
  Alcotest.(check bool) "folding risky would change Eval" true
    (not (Float.equal (Eval.num env risky) (Eval.num env (c 1.0))))

let prop_sound_simplify_preserves_eval_on_zone =
  (* The sound simplifier's whole point: bit-exact-or-tolerance-free is
     too strong for cancellations, but on zone environments the same
     rounding tolerance as the permissive simplifier applies — without
     needing the audit to exclude division-guard regimes for the rules
     the oracle refused to fire. *)
  QCheck.Test.make ~name:"Relint.simplify preserves Eval on the zone"
    ~count:1000 arbitrary_expr_zone_env (fun (e, env) ->
      let before = Eval.num env e in
      let after = Eval.num env (R.simplify rel e) in
      close_up_to_magnitude env e before after)

let prop_validate_rewrite_accepts_sound =
  QCheck.Test.make ~name:"validate_rewrite accepts the sound simplifier"
    ~count:300 (QCheck.make ~print:Pretty.num gen_expr) (fun e ->
      match
        Q.validate_rewrite ~draws:128 rel ~original:e
          ~rewritten:(R.simplify rel e)
      with
      | Ok _ -> true
      | Error _ -> false)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "analysis.interval",
      [
        Alcotest.test_case "basics" `Quick test_interval_basics;
        Alcotest.test_case "safe division" `Quick test_interval_safe_div;
        Alcotest.test_case "verdicts" `Quick test_interval_verdicts;
      ] );
    ( "analysis.absint",
      [ Alcotest.test_case "prune reasons" `Quick test_prune_reasons ]
      @ qcheck
          [
            prop_absint_sound; prop_absint_boolean_sound;
            prop_pruned_replay_as_floor; prop_pruned_equivalents;
          ] );
    ( "analysis.simplify",
      [
        Alcotest.test_case "facts resolve dead guard" `Quick
          test_facts_resolve_dead_guard;
        Alcotest.test_case "commuted self-comparison" `Quick
          test_simplify_self_comparison;
      ]
      @ qcheck [ prop_simplify_preserves_eval; prop_facts_simplify_preserves_eval ]
    );
    ( "analysis.canonical",
      [
        Alcotest.test_case "hole renumbering" `Quick test_normalize_holes;
        Alcotest.test_case "intern table" `Quick test_tbl_intern;
      ]
      @ qcheck
          [
            prop_normalize_idempotent; prop_normalize_merges_commuted;
            prop_normalize_preserves_eval;
          ] );
    ( "analysis.lint",
      [
        Alcotest.test_case "showcase covers the rules" `Quick
          test_lint_showcase_coverage;
        Alcotest.test_case "errors are exactly prunes" `Quick
          test_lint_errors_are_pruned;
        Alcotest.test_case "clean handler" `Quick test_lint_clean_handler;
      ] );
    ( "analysis.relint",
      qcheck
        [
          prop_relint_sound; prop_relint_boolean_sound;
          prop_relint_assume_sound; prop_relint_sample_env_in_zone;
        ] );
    ( "analysis.equiv",
      [
        Alcotest.test_case "Equal agrees with 2k-draw sampling" `Slow
          test_equiv_equal_matches_sampling;
        Alcotest.test_case "student5 is the vacuous conditional" `Quick
          test_equiv_student5;
      ]
      @ qcheck [ prop_equiv_distinct_witness; prop_equiv_rnorm_bit_exact ] );
    ( "analysis.sound-simplify",
      [
        Alcotest.test_case "guard-adjacent cancellation" `Quick
          test_sound_simplify_guard_adjacent_cancellation;
      ]
      @ qcheck
          [
            prop_sound_simplify_preserves_eval_on_zone;
            prop_validate_rewrite_accepts_sound;
          ] );
  ]
