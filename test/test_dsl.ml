(* Tests for the DSL: evaluation, pretty-printing, simplification, unit
   checking, sketches and the sub-DSL catalog. *)

open Abg_dsl
open Expr

let env = Env.example
let check_close msg a b = Alcotest.(check (float 1e-6)) msg a b
let c v = Const v
let ri = Macro Macro.Reno_inc
let vd = Macro Macro.Vegas_diff

(* -- Eval -- *)

let test_eval_leaves () =
  check_close "cwnd" env.Env.cwnd (Eval.num env Cwnd);
  check_close "mss" env.Env.mss (Eval.num env (Signal Signal.Mss));
  check_close "const" 3.5 (Eval.num env (c 3.5))

let test_eval_arith () =
  check_close "add" 5.0 (Eval.num env (Add (c 2.0, c 3.0)));
  check_close "sub" (-1.0) (Eval.num env (Sub (c 2.0, c 3.0)));
  check_close "mul" 6.0 (Eval.num env (Mul (c 2.0, c 3.0)));
  check_close "div" 1.5 (Eval.num env (Div (c 3.0, c 2.0)))

let test_eval_div_zero () =
  check_close "safe div" 0.0 (Eval.num env (Div (c 3.0, c 0.0)))

let test_eval_cube_cbrt () =
  check_close "cube" 27.0 (Eval.num env (Cube (c 3.0)));
  check_close "cbrt" 3.0 (Eval.num env (Cbrt (c 27.0)))

let test_eval_ite () =
  check_close "then" 1.0 (Eval.num env (Ite (Lt (c 1.0, c 2.0), c 1.0, c 9.0)));
  check_close "else" 9.0 (Eval.num env (Ite (Gt (c 1.0, c 2.0), c 1.0, c 9.0)))

let test_eval_modeq () =
  Alcotest.(check bool) "8 % 2 = 0" true (Eval.boolean env (Mod_eq (c 8.0, c 2.0)));
  Alcotest.(check bool) "7 % 2 <> 0" false (Eval.boolean env (Mod_eq (c 7.0, c 2.0)))

let test_eval_macros () =
  check_close "reno-inc"
    (env.Env.acked_bytes *. env.Env.mss /. env.Env.cwnd)
    (Eval.num env ri);
  check_close "vegas-diff"
    ((env.Env.rtt -. env.Env.min_rtt) *. env.Env.ack_rate /. env.Env.mss)
    (Eval.num env vd);
  check_close "htcp-diff"
    ((env.Env.rtt -. env.Env.min_rtt) /. env.Env.max_rtt)
    (Eval.num env (Macro Macro.Htcp_diff));
  check_close "rtts-since-loss"
    (env.Env.time_since_loss /. env.Env.rtt)
    (Eval.num env (Macro Macro.Rtts_since_loss))

let test_eval_hole_raises () =
  Alcotest.check_raises "unfilled hole" (Eval.Unfilled_hole 0) (fun () ->
      ignore (Eval.num env (Hole 0)))

let test_handler_floor () =
  (* A handler can never propose a window below one MSS. *)
  check_close "floored" env.Env.mss (Eval.handler (c 1.0) env);
  check_close "nan floored" env.Env.mss
    (Eval.handler (Div (c 0.0, c 0.0)) env)

(* -- Expr structure -- *)

let reno_handler = Add (Cwnd, Mul (c 0.7, ri))

let test_size_depth () =
  Alcotest.(check int) "size" 5 (size reno_handler);
  Alcotest.(check int) "depth" 3 (depth reno_handler);
  Alcotest.(check int) "leaf depth" 1 (depth Cwnd)

let test_equal_num () =
  Alcotest.(check bool) "equal" true (equal_num reno_handler reno_handler);
  Alcotest.(check bool) "different" false (equal_num reno_handler Cwnd)

let test_holes_fill () =
  let sk = Add (Hole 0, Mul (Hole 1, Hole 0)) in
  Alcotest.(check (list int)) "holes" [ 0; 1 ] (holes sk);
  let filled = fill sk (fun i -> float_of_int (i + 1)) in
  check_close "filled eval" 3.0 (Eval.num env filled)

let test_signals_through_macros () =
  let sigs = signals (Add (Cwnd, vd)) in
  Alcotest.(check bool) "rtt via macro" true (List.mem Signal.Rtt sigs);
  Alcotest.(check bool) "ack-rate via macro" true (List.mem Signal.Ack_rate sigs)

(* -- Pretty -- *)

let test_pretty_reno () =
  Alcotest.(check string) "reno" "CWND + .7 * reno-inc" (Pretty.num reno_handler)

let test_pretty_ite () =
  Alcotest.(check string) "vegas-style"
    "CWND + ({vegas-diff < 1} ? .7 * reno-inc : 0)"
    (Pretty.num (Add (Cwnd, Ite (Lt (vd, c 1.0), Mul (c 0.7, ri), c 0.0))))

let test_pretty_constants () =
  Alcotest.(check string) "integer" "8" (Pretty.const_to_string 8.0);
  Alcotest.(check string) "leading dot" ".7" (Pretty.const_to_string 0.7);
  Alcotest.(check string) "negative dot" "-.7" (Pretty.const_to_string (-0.7));
  Alcotest.(check string) "plain" "2.05" (Pretty.const_to_string 2.05)

let test_pretty_precedence () =
  Alcotest.(check string) "paren" "(1 + 2) * CWND"
    (Pretty.num (Mul (Add (c 1.0, c 2.0), Cwnd)))

(* -- Simplify -- *)

let simp = Simplify.simplify

let test_simplify_folding () =
  Alcotest.(check bool) "const fold" true (equal_num (c 5.0) (simp (Add (c 2.0, c 3.0))));
  Alcotest.(check bool) "mul by zero" true (equal_num (c 0.0) (simp (Mul (Cwnd, c 0.0))))

let test_simplify_identities () =
  Alcotest.(check bool) "x+0" true (equal_num Cwnd (simp (Add (Cwnd, c 0.0))));
  Alcotest.(check bool) "1*x" true (equal_num Cwnd (simp (Mul (c 1.0, Cwnd))));
  Alcotest.(check bool) "x/1" true (equal_num Cwnd (simp (Div (Cwnd, c 1.0))));
  Alcotest.(check bool) "x-x" true (equal_num (c 0.0) (simp (Sub (ri, ri))));
  Alcotest.(check bool) "x/x" true (equal_num (c 1.0) (simp (Div (ri, ri))))

let test_simplify_cancellation () =
  (* a / (a / b) = b — the smuggled-identity pattern. *)
  Alcotest.(check bool) "a/(a/b)" true
    (equal_num Cwnd (simp (Div (ri, Div (ri, Cwnd)))));
  Alcotest.(check bool) "a*(b/a)" true
    (equal_num Cwnd (simp (Mul (ri, Div (Cwnd, ri)))));
  Alcotest.(check bool) "(a+b)-a" true
    (equal_num Cwnd (simp (Sub (Add (ri, Cwnd), ri))));
  Alcotest.(check bool) "a+(b-a)" true
    (equal_num Cwnd (simp (Add (ri, Sub (Cwnd, ri)))))

let test_simplify_ite () =
  Alcotest.(check bool) "equal branches" true
    (equal_num ri (simp (Ite (Lt (Cwnd, ri), ri, ri))));
  Alcotest.(check bool) "known condition" true
    (equal_num Cwnd (simp (Ite (Lt (c 1.0, c 2.0), Cwnd, ri))));
  Alcotest.(check bool) "x<x false" true
    (equal_num ri (simp (Ite (Lt (Cwnd, Cwnd), Cwnd, ri))))

let test_simplify_cube_cbrt_inverse () =
  Alcotest.(check bool) "cbrt(cube x)" true (equal_num Cwnd (simp (Cbrt (Cube Cwnd))));
  Alcotest.(check bool) "cube(cbrt x)" true (equal_num Cwnd (simp (Cube (Cbrt Cwnd))))

let test_is_simplifiable () =
  Alcotest.(check bool) "reducible" true
    (Simplify.is_simplifiable (Div (ri, Div (ri, Cwnd))));
  Alcotest.(check bool) "reno handler is minimal" false
    (Simplify.is_simplifiable reno_handler);
  (* The paper's Student-5 limitation: a semantically vacuous conditional
     is NOT caught without interval reasoning (§5.6). *)
  let vacuous = Ite (Lt (Div (vd, Signal Signal.Min_rtt), c 5.0), Cwnd, ri) in
  Alcotest.(check bool) "student-5 conditional survives" false
    (Simplify.is_simplifiable vacuous)

(* -- Unit check -- *)

let test_units_reno () =
  Alcotest.(check bool) "reno handler is bytes" true
    (Unit_check.check reno_handler ~expected:Abg_util.Units.bytes)

let test_units_reject_mixed_add () =
  Alcotest.(check bool) "cwnd + rtt rejected" false
    (Unit_check.check (Add (Cwnd, Signal Signal.Rtt))
       ~expected:Abg_util.Units.bytes)

let test_units_constant_per_second () =
  (* Hybla's 8 * RTT * reno-inc: the 8 must act as 1/s. *)
  let hybla = Add (Cwnd, Mul (Mul (c 8.0, Signal Signal.Rtt), ri)) in
  Alcotest.(check bool) "hybla accepted" true
    (Unit_check.check hybla ~expected:Abg_util.Units.bytes)

let test_units_constant_not_bytes () =
  (* 8 + reno-inc needs a bytes-valued constant: rejected. *)
  Alcotest.(check bool) "const can't be bytes" false
    (Unit_check.check (Add (c 8.0, ri)) ~expected:Abg_util.Units.bytes)

let test_units_rate_times_time () =
  let bdp = Mul (Signal Signal.Ack_rate, Signal Signal.Min_rtt) in
  Alcotest.(check bool) "rate * time = bytes" true
    (Unit_check.check bdp ~expected:Abg_util.Units.bytes)

let test_units_modeq_exempt () =
  (* The paper's synthesized BBR handler compares CWND % 2.7. *)
  let e = Ite (Mod_eq (Cwnd, c 2.7), Mul (c 2.05, Cwnd), Signal Signal.Mss) in
  Alcotest.(check bool) "modeq exempt" true
    (Unit_check.check e ~expected:Abg_util.Units.bytes)

let test_units_cubic_limitation () =
  (* cbrt of a bytes quantity cannot be typed in the integer domain. *)
  Alcotest.(check bool) "cbrt(wmax) untypable" false
    (Unit_check.check (Cbrt (Signal Signal.Wmax))
       ~expected:{ Abg_util.Units.bytes = 1; seconds = 0 })

let test_fine_tuned_tables_unit_check () =
  (* Every paper expression except Cubic's (unit checking disabled for the
     cubic DSL) must type as bytes. *)
  List.iter
    (fun (name, h) ->
      if not (String.equal name "cubic") then
        Alcotest.(check bool) (name ^ " types as bytes") true
          (Unit_check.check h ~expected:Abg_util.Units.bytes))
    Abg_core.Fine_tuned.fine_tuned

(* -- Sketch -- *)

let test_sketch_completions_count () =
  let sk = Add (Hole 0, Mul (Hole 1, ri)) in
  Alcotest.(check int) "pool^k" 25 (Sketch.num_completions sk ~pool_size:5)

let test_sketch_all_completions () =
  let sk = Mul (Hole 0, Cwnd) in
  let pool = [| 1.0; 2.0; 3.0 |] in
  let all = Sketch.all_completions sk ~pool ~max_count:10 in
  Alcotest.(check int) "3 completions" 3 (List.length all);
  let values =
    List.map (fun h -> Eval.num env h /. env.Env.cwnd) all |> List.sort compare
  in
  Alcotest.(check (list (float 1e-9))) "values" [ 1.0; 2.0; 3.0 ] values

let test_sketch_sample_completions () =
  let rng = Abg_util.Rng.create 3 in
  let sk = Mul (Hole 0, Cwnd) in
  let samples = Sketch.sample_completions rng sk ~pool:Catalog.default_constants ~n:7 in
  Alcotest.(check int) "7 samples" 7 (List.length samples);
  List.iter
    (fun h -> Alcotest.(check (list int)) "no holes left" [] (holes h))
    samples

let test_sketch_operator_set () =
  let ops = Sketch.operator_set (Add (Cwnd, Ite (Lt (vd, c 1.0), ri, c 0.0))) in
  Alcotest.(check int) "3 ops" 3 (List.length ops);
  Alcotest.(check bool) "has ite" true (List.exists (Component.equal Component.Op_ite) ops)

(* -- Catalog / components -- *)

let test_catalog_lookup () =
  Alcotest.(check bool) "reno found" true (Catalog.find "reno" <> None);
  Alcotest.(check bool) "nonsense missing" true (Catalog.find "nope" = None)

let test_catalog_cubic_units_off () =
  Alcotest.(check bool) "cubic skips units" false
    Catalog.cubic.Catalog.unit_check

let test_component_arity_sorts () =
  Alcotest.(check int) "ite arity" 3 (Component.arity Component.Op_ite);
  Alcotest.(check int) "leaf arity" 0 (Component.arity Component.Leaf_cwnd);
  Alcotest.(check bool) "lt is bool" true (Component.sort Component.Op_lt = Component.Bool);
  Alcotest.(check bool) "add is num" true (Component.sort Component.Op_add = Component.Num)

let test_signal_names_roundtrip () =
  List.iter
    (fun s ->
      match Signal.of_name (Signal.name s) with
      | Some s' -> Alcotest.(check bool) "roundtrip" true (Signal.equal s s')
      | None -> Alcotest.fail "name not found")
    Signal.all

let test_macro_names_roundtrip () =
  List.iter
    (fun m ->
      match Macro.of_name (Macro.name m) with
      | Some m' -> Alcotest.(check bool) "roundtrip" true (Macro.equal m m')
      | None -> Alcotest.fail "name not found")
    Macro.all

(* -- QCheck: simplify preserves semantics -- *)

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ return Cwnd; return ri; return (Signal Signal.Mss);
        return (Signal Signal.Rtt);
        map (fun v -> Const v) (float_range 0.1 8.0) ]
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then leaf
          else
            frequency
              [ (2, leaf);
                (2, map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2)));
                (2, map2 (fun a b -> Sub (a, b)) (self (n / 2)) (self (n / 2)));
                (2, map2 (fun a b -> Mul (a, b)) (self (n / 2)) (self (n / 2)));
                (1, map2 (fun a b -> Div (a, b)) (self (n / 2)) (self (n / 2)));
                ( 1,
                  map3
                    (fun a b t -> Ite (Lt (a, b), t, Cwnd))
                    (self (n / 3)) (self (n / 3)) (self (n / 3)) ) ])
        (min n 8))

let arbitrary_expr = QCheck.make ~print:Pretty.num gen_expr

let prop_simplify_preserves_value =
  QCheck.Test.make ~name:"simplify preserves evaluation" ~count:300
    arbitrary_expr (fun e ->
      let before = Eval.num env e in
      let after = Eval.num env (simp e) in
      (not (Float.is_finite before))
      || Abg_util.Floatx.approx_equal ~eps:1e-6 before after)

let prop_simplify_never_grows =
  QCheck.Test.make ~name:"simplify never grows the tree" ~count:300
    arbitrary_expr (fun e -> size (simp e) <= size e)

let prop_pretty_total =
  QCheck.Test.make ~name:"pretty printing is total" ~count:300 arbitrary_expr
    (fun e -> String.length (Pretty.num e) > 0)

(* -- QCheck: compiled closures agree with the reference interpreter -- *)

(* Wider generator than [gen_expr]: all macros, more signals, negative and
   zero constants (to hit the safe-division guards), Cube/Cbrt, and all
   three boolean connectives — everything Compile.stage has cases for,
   including the fused affine-increase shapes. *)
let gen_expr_full =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ return Cwnd; return ri; return vd;
        return (Macro Macro.Htcp_diff); return (Macro Macro.Rtts_since_loss);
        return (Signal Signal.Mss); return (Signal Signal.Rtt);
        return (Signal Signal.Ack_rate); return (Signal Signal.Wmax);
        return (Const 0.0);
        map (fun v -> Const v) (float_range (-4.0) 8.0) ]
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then leaf
          else
            frequency
              [ (2, leaf);
                (2, map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2)));
                (2, map2 (fun a b -> Sub (a, b)) (self (n / 2)) (self (n / 2)));
                (2, map2 (fun a b -> Mul (a, b)) (self (n / 2)) (self (n / 2)));
                (2, map2 (fun a b -> Div (a, b)) (self (n / 2)) (self (n / 2)));
                (1, map (fun a -> Cube a) (self (n - 1)));
                (1, map (fun a -> Cbrt a) (self (n - 1)));
                ( 1,
                  map3
                    (fun a b t -> Ite (Lt (a, b), t, Cwnd))
                    (self (n / 3)) (self (n / 3)) (self (n / 3)) );
                ( 1,
                  map3
                    (fun a b t -> Ite (Gt (a, b), t, b))
                    (self (n / 3)) (self (n / 3)) (self (n / 3)) );
                ( 1,
                  map3
                    (fun a b t -> Ite (Mod_eq (a, b), t, a))
                    (self (n / 3)) (self (n / 3)) (self (n / 3)) ) ])
        (min n 10))

(* Random environments, with zeros mixed in so divisor guards and the
   handler's MSS floor are exercised, not just the generic arithmetic. *)
let gen_env =
  QCheck.Gen.(
    map
      (fun l ->
        match l with
        | [ cwnd; mss; acked_bytes; time_since_loss; rtt; min_rtt; max_rtt;
            ack_rate; rtt_gradient; delay_gradient; wmax ] ->
            { Env.cwnd; mss; acked_bytes; time_since_loss; rtt; min_rtt;
              max_rtt; ack_rate; rtt_gradient; delay_gradient; wmax }
        | _ -> assert false)
      (list_repeat 11
         (oneof
            [ float_range 0.0 50000.0; return 0.0; float_range (-10.0) 10.0 ])))

let arbitrary_expr_env =
  QCheck.make
    ~print:(fun (e, _) -> Pretty.num e)
    QCheck.Gen.(pair gen_expr_full gen_env)

(* Float.equal: NaN agrees with NaN, so compiled and interpreted results
   must be the same value, not just approximately close. *)
let prop_compile_matches_eval =
  QCheck.Test.make ~name:"Compile.num = Eval.num (bit-exact)" ~count:1000
    arbitrary_expr_env (fun (e, env) ->
      Float.equal (Eval.num env e) (Compile.num e env))

let prop_compile_handler_matches_eval =
  QCheck.Test.make ~name:"Compile.handler = Eval.handler (bit-exact)"
    ~count:1000 arbitrary_expr_env (fun (e, env) ->
      Float.equal (Eval.handler e env) (Compile.handler e env))

let prop_compile_boolean_matches_eval =
  QCheck.Test.make ~name:"Compile.boolean = Eval.boolean" ~count:1000
    (QCheck.make QCheck.Gen.(pair (pair gen_expr_full gen_expr_full) gen_env))
    (fun ((a, b), env) ->
      List.for_all
        (fun p -> Bool.equal (Eval.boolean env p) (Compile.boolean p env))
        [ Lt (a, b); Gt (a, b); Mod_eq (a, b) ])

let test_compile_hole_raises () =
  let f = Compile.num (Add (Cwnd, Hole 3)) in
  Alcotest.check_raises "unfilled hole" (Eval.Unfilled_hole 3) (fun () ->
      ignore (f env))

let test_compile_affine_exact () =
  (* The fused affine-increase fast path must match the interpreter on
     the catalog handlers that take it. *)
  List.iter
    (fun m ->
      List.iter
        (fun k ->
          let e = Add (Cwnd, Mul (c k, Macro m)) in
          Alcotest.(check bool)
            (Pretty.num e) true
            (Float.equal (Eval.handler e env) (Compile.handler e env));
          let e' = Add (Cwnd, Macro m) in
          Alcotest.(check bool)
            (Pretty.num e') true
            (Float.equal (Eval.handler e' env) (Compile.handler e' env)))
        [ 0.0; 0.7; 1.0; -2.5 ])
    Macro.all

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "dsl.eval",
      [
        Alcotest.test_case "leaves" `Quick test_eval_leaves;
        Alcotest.test_case "arithmetic" `Quick test_eval_arith;
        Alcotest.test_case "division by zero" `Quick test_eval_div_zero;
        Alcotest.test_case "cube/cbrt" `Quick test_eval_cube_cbrt;
        Alcotest.test_case "conditional" `Quick test_eval_ite;
        Alcotest.test_case "mod-eq" `Quick test_eval_modeq;
        Alcotest.test_case "macros" `Quick test_eval_macros;
        Alcotest.test_case "unfilled hole raises" `Quick test_eval_hole_raises;
        Alcotest.test_case "handler floor" `Quick test_handler_floor;
      ] );
    ( "dsl.expr",
      [
        Alcotest.test_case "size/depth" `Quick test_size_depth;
        Alcotest.test_case "equality" `Quick test_equal_num;
        Alcotest.test_case "holes and fill" `Quick test_holes_fill;
        Alcotest.test_case "signals through macros" `Quick test_signals_through_macros;
      ] );
    ( "dsl.pretty",
      [
        Alcotest.test_case "reno" `Quick test_pretty_reno;
        Alcotest.test_case "conditional" `Quick test_pretty_ite;
        Alcotest.test_case "constants" `Quick test_pretty_constants;
        Alcotest.test_case "precedence" `Quick test_pretty_precedence;
      ]
      @ qcheck [ prop_pretty_total ] );
    ( "dsl.simplify",
      [
        Alcotest.test_case "constant folding" `Quick test_simplify_folding;
        Alcotest.test_case "identities" `Quick test_simplify_identities;
        Alcotest.test_case "cancellation" `Quick test_simplify_cancellation;
        Alcotest.test_case "conditionals" `Quick test_simplify_ite;
        Alcotest.test_case "cube/cbrt inverse" `Quick test_simplify_cube_cbrt_inverse;
        Alcotest.test_case "is_simplifiable" `Quick test_is_simplifiable;
      ]
      @ qcheck [ prop_simplify_preserves_value; prop_simplify_never_grows ] );
    ( "dsl.compile",
      [
        Alcotest.test_case "unfilled hole raises" `Quick test_compile_hole_raises;
        Alcotest.test_case "affine fast path" `Quick test_compile_affine_exact;
      ]
      @ qcheck
          [ prop_compile_matches_eval; prop_compile_handler_matches_eval;
            prop_compile_boolean_matches_eval ] );
    ( "dsl.units",
      [
        Alcotest.test_case "reno typed" `Quick test_units_reno;
        Alcotest.test_case "mixed add rejected" `Quick test_units_reject_mixed_add;
        Alcotest.test_case "per-second constant" `Quick test_units_constant_per_second;
        Alcotest.test_case "no bytes constant" `Quick test_units_constant_not_bytes;
        Alcotest.test_case "rate x time" `Quick test_units_rate_times_time;
        Alcotest.test_case "modeq exempt" `Quick test_units_modeq_exempt;
        Alcotest.test_case "cubic cbrt limitation" `Quick test_units_cubic_limitation;
        Alcotest.test_case "fine-tuned table types" `Quick test_fine_tuned_tables_unit_check;
      ] );
    ( "dsl.sketch",
      [
        Alcotest.test_case "completion count" `Quick test_sketch_completions_count;
        Alcotest.test_case "all completions" `Quick test_sketch_all_completions;
        Alcotest.test_case "sampled completions" `Quick test_sketch_sample_completions;
        Alcotest.test_case "operator set" `Quick test_sketch_operator_set;
      ] );
    ( "dsl.catalog",
      [
        Alcotest.test_case "lookup" `Quick test_catalog_lookup;
        Alcotest.test_case "cubic units disabled" `Quick test_catalog_cubic_units_off;
        Alcotest.test_case "component metadata" `Quick test_component_arity_sorts;
        Alcotest.test_case "signal names" `Quick test_signal_names_roundtrip;
        Alcotest.test_case "macro names" `Quick test_macro_names_roundtrip;
      ] );
  ]
