(* Aggregated test entry point; suites are registered by module. *)
let () =
  Alcotest.run "abagnale"
    (Test_util.suites @ Test_sat.suites @ Test_dsl.suites @ Test_netsim.suites
   @ Test_cca.suites @ Test_trace.suites @ Test_distance.suites
   @ Test_enum.suites @ Test_analysis.suites @ Test_classifier.suites
   @ Test_core.suites @ Test_obs.suites @ Test_batch.suites @ Test_fuzz.suites
   @ Test_serve.suites)
