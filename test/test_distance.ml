(* Tests for the distance metrics. *)

let check_close msg a b = Alcotest.(check (float 1e-6)) msg a b

let test_dtw_identical () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close "zero distance" 0.0 (Abg_distance.Dtw.distance a a)

let test_dtw_known_value () =
  (* Align [1,2] against [1,2,2]: the extra 2 matches for free. *)
  check_close "warped zero" 0.0
    (Abg_distance.Dtw.distance [| 1.0; 2.0 |] [| 1.0; 2.0; 2.0 |])

let test_dtw_shift_tolerance () =
  (* A one-step phase shift of a pulse: DTW forgives it, Euclidean pays
     full price — the Figure 3/4 rationale. *)
  let a = [| 0.0; 0.0; 5.0; 0.0; 0.0; 0.0 |] in
  let b = [| 0.0; 0.0; 0.0; 5.0; 0.0; 0.0 |] in
  let d_dtw = Abg_distance.Dtw.distance a b in
  let d_euc = Abg_distance.Pointwise.euclidean a b in
  Alcotest.(check bool) "dtw forgives shift" true (d_dtw < d_euc)

let test_dtw_band_matches_full_when_wide () =
  let a = Array.init 30 (fun i -> sin (float_of_int i /. 3.0)) in
  let b = Array.init 30 (fun i -> cos (float_of_int i /. 4.0)) in
  check_close "wide band = exact" (Abg_distance.Dtw.distance a b)
    (Abg_distance.Dtw.distance ~band:30 a b)

let test_dtw_empty () =
  Alcotest.(check bool) "empty = inf" true
    (Abg_distance.Dtw.distance [||] [| 1.0 |] = infinity)

let test_dtw_path_endpoints () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 1.0; 3.0 |] in
  let d, path = Abg_distance.Dtw.path a b in
  Alcotest.(check bool) "distance consistent" true
    (Abg_util.Floatx.approx_equal d (Abg_distance.Dtw.distance a b));
  Alcotest.(check (pair int int)) "starts at origin" (0, 0) (List.hd path);
  Alcotest.(check (pair int int)) "ends at corner" (2, 1)
    (List.nth path (List.length path - 1))

let test_euclidean_known () =
  check_close "3-4-5" 5.0
    (Abg_distance.Pointwise.euclidean [| 0.0; 0.0 |] [| 3.0; 4.0 |])

let test_manhattan_known () =
  check_close "sum abs" 7.0
    (Abg_distance.Pointwise.manhattan [| 0.0; 0.0 |] [| 3.0; 4.0 |])

let test_frechet_identical () =
  let a = [| 1.0; 5.0; 2.0 |] in
  check_close "zero" 0.0 (Abg_distance.Frechet.distance a a)

let test_frechet_constant_offset () =
  let a = [| 1.0; 2.0; 3.0 |] in
  let b = Array.map (fun x -> x +. 2.0) a in
  check_close "offset = max gap" 2.0 (Abg_distance.Frechet.distance a b)

let test_series_prepare_normalizes () =
  let truth = [| 10.0; 10.0; 10.0; 10.0 |] in
  let cand = [| 20.0; 20.0; 20.0; 20.0 |] in
  let t', c' = Abg_distance.Series.prepare ~length:4 ~truth ~candidate:cand () in
  check_close "truth scaled to 1" 1.0 t'.(0);
  check_close "candidate scaled by truth mean" 2.0 c'.(0)

let test_series_prepare_resamples () =
  let truth = Array.init 100 float_of_int in
  let cand = Array.init 17 float_of_int in
  let t', c' = Abg_distance.Series.prepare ~length:32 ~truth ~candidate:cand () in
  Alcotest.(check int) "truth length" 32 (Array.length t');
  Alcotest.(check int) "candidate length" 32 (Array.length c')

let test_metric_dispatch () =
  List.iter
    (fun kind ->
      let name = Abg_distance.Metric.name kind in
      (match Abg_distance.Metric.of_name name with
      | Some k -> Alcotest.(check bool) "roundtrip" true (k = kind)
      | None -> Alcotest.fail "name lookup");
      let truth = Array.init 50 (fun i -> 100.0 +. float_of_int i) in
      let d_same = Abg_distance.Metric.compute kind ~truth ~candidate:truth in
      check_close (name ^ " self-distance") 0.0 d_same)
    Abg_distance.Metric.all

let test_metric_orders_candidates () =
  (* A close candidate must beat a far one under every metric. *)
  let truth = Array.init 64 (fun i -> 100.0 +. (2.0 *. float_of_int i)) in
  let near = Array.map (fun v -> v *. 1.05) truth in
  let far = Array.map (fun v -> v *. 3.0) truth in
  List.iter
    (fun kind ->
      let d_near = Abg_distance.Metric.compute kind ~truth ~candidate:near in
      let d_far = Abg_distance.Metric.compute kind ~truth ~candidate:far in
      Alcotest.(check bool)
        (Abg_distance.Metric.name kind ^ " orders correctly")
        true (d_near < d_far))
    Abg_distance.Metric.all

let arb_series =
  QCheck.(
    make
      ~print:(fun a -> String.concat ";" (List.map string_of_float (Array.to_list a)))
      Gen.(map Array.of_list (list_size (int_range 2 40) (float_range 0.0 100.0))))

let prop_dtw_nonnegative =
  QCheck.Test.make ~name:"dtw >= 0" ~count:200 (QCheck.pair arb_series arb_series)
    (fun (a, b) -> Abg_distance.Dtw.distance a b >= 0.0)

let prop_dtw_le_manhattan =
  (* On equal-length series the diagonal path costs exactly the Manhattan
     distance, so the optimal DTW alignment can never cost more. *)
  QCheck.Test.make ~name:"dtw <= manhattan (equal lengths)" ~count:200
    (QCheck.pair arb_series arb_series) (fun (a, b) ->
      let n = min (Array.length a) (Array.length b) in
      let a = Array.sub a 0 n and b = Array.sub b 0 n in
      Abg_distance.Dtw.distance a b
      <= Abg_distance.Pointwise.manhattan a b +. 1e-9)

let prop_frechet_le_max_gap =
  QCheck.Test.make ~name:"frechet <= max pointwise gap (equal lengths)"
    ~count:200 (QCheck.pair arb_series arb_series) (fun (a, b) ->
      let n = min (Array.length a) (Array.length b) in
      let a = Array.sub a 0 n and b = Array.sub b 0 n in
      let max_gap = ref 0.0 in
      Array.iteri (fun i x -> max_gap := Float.max !max_gap (Float.abs (x -. b.(i)))) a;
      Abg_distance.Frechet.distance a b <= !max_gap +. 1e-9)

let prop_band_lower_bounds_exact =
  QCheck.Test.make ~name:"banded dtw upper-bounds exact dtw" ~count:200
    (QCheck.pair arb_series arb_series) (fun (a, b) ->
      Abg_distance.Dtw.distance ~band:3 a b
      >= Abg_distance.Dtw.distance a b -. 1e-9)

(* -- Cutoff (early-abandon) semantics: exact at or below the cutoff,
   infinity only when provably worse. One property per metric. -- *)

let arb_pair_cutoff =
  QCheck.(
    triple arb_series arb_series
      (make QCheck.Gen.(float_range 0.0 2000.0)))

let cutoff_sound name dist =
  (* [dist ?cutoff a b]: at or below the cutoff the result is exact;
     above it, the only admissible answers are the exact value or
     infinity. *)
  QCheck.Test.make ~name ~count:300 arb_pair_cutoff (fun (a, b, cutoff) ->
      let full = dist ?cutoff:None a b in
      let cut = dist ?cutoff:(Some cutoff) a b in
      if full <= cutoff then cut = full else cut = full || cut = infinity)

let prop_dtw_cutoff_sound =
  cutoff_sound "dtw cutoff: exact below, inf-or-exact above"
    (fun ?cutoff a b -> Abg_distance.Dtw.distance ~band:3 ?cutoff a b)

let prop_euclidean_cutoff_sound =
  cutoff_sound "euclidean cutoff: exact below, inf-or-exact above"
    (fun ?cutoff a b ->
      let n = min (Array.length a) (Array.length b) in
      Abg_distance.Pointwise.euclidean ?cutoff (Array.sub a 0 n)
        (Array.sub b 0 n))

let prop_manhattan_cutoff_sound =
  cutoff_sound "manhattan cutoff: exact below, inf-or-exact above"
    (fun ?cutoff a b ->
      let n = min (Array.length a) (Array.length b) in
      Abg_distance.Pointwise.manhattan ?cutoff (Array.sub a 0 n)
        (Array.sub b 0 n))

let prop_frechet_cutoff_sound =
  cutoff_sound "frechet cutoff: exact below, inf-or-exact above"
    (fun ?cutoff a b -> Abg_distance.Frechet.distance ?cutoff a b)

let prop_frechet_banded_cutoff_sound =
  cutoff_sound "banded frechet cutoff: exact below, inf-or-exact above"
    (fun ?cutoff a b -> Abg_distance.Frechet.distance ~band:3 ?cutoff a b)

(* A Sakoe–Chiba band restricts the admissible couplings, so the banded
   discrete Fréchet distance can only over-estimate the exact one. *)
let prop_frechet_band_upper_bounds_exact =
  QCheck.Test.make ~name:"banded frechet upper-bounds exact frechet" ~count:200
    (QCheck.pair arb_series arb_series) (fun (a, b) ->
      Abg_distance.Frechet.distance ~band:3 a b
      >= Abg_distance.Frechet.distance a b -. 1e-9)

let test_frechet_band_matches_full_when_wide () =
  let a = Array.init 50 (fun i -> Float.sin (float_of_int i /. 5.0)) in
  let b = Array.init 37 (fun i -> Float.cos (float_of_int i /. 7.0)) in
  Alcotest.(check (float 0.0))
    "band >= max length is exact" (Abg_distance.Frechet.distance a b)
    (Abg_distance.Frechet.distance ~band:50 a b)

let test_frechet_cutoff_abandons () =
  let a = Array.init 64 (fun i -> float_of_int i) in
  let b = Array.init 64 (fun i -> float_of_int i +. 50.0) in
  let full = Abg_distance.Frechet.distance ~band:6 a b in
  Alcotest.(check bool) "abandons" true
    (Abg_distance.Frechet.distance ~band:6 ~cutoff:(full /. 10.0) a b = infinity)

let test_dtw_cutoff_abandons () =
  (* A cutoff far below the true distance must abandon. *)
  let a = Array.init 64 (fun i -> float_of_int i) in
  let b = Array.init 64 (fun i -> float_of_int i +. 50.0) in
  let full = Abg_distance.Dtw.distance ~band:6 a b in
  Alcotest.(check bool) "abandons" true
    (Abg_distance.Dtw.distance ~band:6 ~cutoff:(full /. 10.0) a b = infinity)

let test_metric_prepared_matches_compute () =
  (* Prepared truth must give exactly the one-shot compute result. *)
  let truth = Array.init 100 (fun i -> 100.0 +. (3.0 *. float_of_int i)) in
  let cand = Array.init 73 (fun i -> 90.0 +. (3.5 *. float_of_int i)) in
  List.iter
    (fun kind ->
      let p = Abg_distance.Metric.prepare kind ~truth in
      Alcotest.(check (float 0.0))
        (Abg_distance.Metric.name kind ^ " prepared = compute")
        (Abg_distance.Metric.compute kind ~truth ~candidate:cand)
        (Abg_distance.Metric.compute_prepared p ~candidate:cand))
    Abg_distance.Metric.all

let test_metric_cutoff_exact_below () =
  let truth = Array.init 100 (fun i -> 100.0 +. (3.0 *. float_of_int i)) in
  let cand = Array.map (fun v -> v *. 1.1) truth in
  List.iter
    (fun kind ->
      let full = Abg_distance.Metric.compute kind ~truth ~candidate:cand in
      Alcotest.(check (float 0.0))
        (Abg_distance.Metric.name kind ^ " exact below cutoff")
        full
        (Abg_distance.Metric.compute kind ~cutoff:(full +. 1.0) ~truth
           ~candidate:cand))
    Abg_distance.Metric.all

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "distance.dtw",
      [
        Alcotest.test_case "identical" `Quick test_dtw_identical;
        Alcotest.test_case "free repeat" `Quick test_dtw_known_value;
        Alcotest.test_case "shift tolerance" `Quick test_dtw_shift_tolerance;
        Alcotest.test_case "band wide = exact" `Quick test_dtw_band_matches_full_when_wide;
        Alcotest.test_case "empty" `Quick test_dtw_empty;
        Alcotest.test_case "path endpoints" `Quick test_dtw_path_endpoints;
      ]
      @ qcheck
          [ prop_dtw_nonnegative; prop_dtw_le_manhattan;
            prop_band_lower_bounds_exact; prop_dtw_cutoff_sound ]
      @ [ Alcotest.test_case "cutoff abandons" `Quick test_dtw_cutoff_abandons ]
    );
    ( "distance.pointwise",
      [
        Alcotest.test_case "euclidean" `Quick test_euclidean_known;
        Alcotest.test_case "manhattan" `Quick test_manhattan_known;
      ]
      @ qcheck [ prop_euclidean_cutoff_sound; prop_manhattan_cutoff_sound ] );
    ( "distance.frechet",
      [
        Alcotest.test_case "identical" `Quick test_frechet_identical;
        Alcotest.test_case "offset" `Quick test_frechet_constant_offset;
        Alcotest.test_case "band wide = exact" `Quick
          test_frechet_band_matches_full_when_wide;
      ]
      @ qcheck
          [ prop_frechet_le_max_gap; prop_frechet_cutoff_sound;
            prop_frechet_banded_cutoff_sound;
            prop_frechet_band_upper_bounds_exact ]
      @ [
          Alcotest.test_case "cutoff abandons" `Quick
            test_frechet_cutoff_abandons;
        ] );
    ( "distance.metric",
      [
        Alcotest.test_case "prepare normalizes" `Quick test_series_prepare_normalizes;
        Alcotest.test_case "prepare resamples" `Quick test_series_prepare_resamples;
        Alcotest.test_case "dispatch" `Quick test_metric_dispatch;
        Alcotest.test_case "orders candidates" `Quick test_metric_orders_candidates;
        Alcotest.test_case "prepared = compute" `Quick test_metric_prepared_matches_compute;
        Alcotest.test_case "cutoff exact below" `Quick test_metric_cutoff_exact_below;
      ] );
  ]
