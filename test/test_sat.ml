(* Tests for the CDCL SAT solver and CNF helpers, including a
   brute-force differential fuzz on random 3-SAT. *)

open Abg_sat

let fresh_vars s n = List.init n (fun _ -> Solver.new_var s)

let expect_sat s =
  match Solver.solve s with
  | Solver.Sat m -> m
  | Solver.Unsat -> Alcotest.fail "expected SAT"

let expect_unsat ?assumptions s =
  match Solver.solve ?assumptions s with
  | Solver.Sat _ -> Alcotest.fail "expected UNSAT"
  | Solver.Unsat -> ()

let test_trivial_sat () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ v ];
  let m = expect_sat s in
  Alcotest.(check bool) "v true" true m.(v)

let test_trivial_unsat () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ v ];
  Solver.add_clause s [ -v ];
  expect_unsat s

let test_unit_propagation_chain () =
  let s = Solver.create () in
  let vs = Array.of_list (fresh_vars s 10) in
  Solver.add_clause s [ vs.(0) ];
  for i = 0 to 8 do
    Solver.add_clause s [ -vs.(i); vs.(i + 1) ]
  done;
  let m = expect_sat s in
  Array.iter (fun v -> Alcotest.(check bool) "chain forced" true m.(v)) vs

let test_empty_formula_sat () =
  let s = Solver.create () in
  let _ = fresh_vars s 3 in
  ignore (expect_sat s)

let test_pigeonhole_unsat () =
  (* 4 pigeons, 3 holes. *)
  let s = Solver.create () in
  let p = Array.init 4 (fun _ -> Array.of_list (fresh_vars s 3)) in
  for i = 0 to 3 do
    Solver.add_clause s (Array.to_list p.(i))
  done;
  for h = 0 to 2 do
    for i = 0 to 3 do
      for j = i + 1 to 3 do
        Solver.add_clause s [ -p.(i).(h); -p.(j).(h) ]
      done
    done
  done;
  expect_unsat s

let test_model_satisfies () =
  let s = Solver.create () in
  let vs = fresh_vars s 6 in
  let clauses =
    [ [ List.nth vs 0; -List.nth vs 1 ]; [ List.nth vs 2; List.nth vs 3 ];
      [ -List.nth vs 4; List.nth vs 5; List.nth vs 0 ] ]
  in
  List.iter (Solver.add_clause s) clauses;
  let m = expect_sat s in
  List.iter
    (fun c ->
      Alcotest.(check bool) "clause satisfied" true
        (List.exists (fun l -> if l > 0 then m.(l) else not m.(-l)) c))
    clauses

let test_assumptions () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ -a; b ];
  expect_unsat ~assumptions:[ a; -b ] s;
  (match Solver.solve ~assumptions:[ a ] s with
  | Solver.Sat m -> Alcotest.(check bool) "b forced" true m.(b)
  | Solver.Unsat -> Alcotest.fail "expected SAT");
  (* The solver must stay usable after a failed-assumption call. *)
  ignore (expect_sat s)

let test_enumeration_count () =
  (* Count models of (x1 | x2 | x3): 7 of 8 assignments. *)
  let s = Solver.create () in
  let vs = fresh_vars s 3 in
  Solver.add_clause s vs;
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Solver.solve s with
    | Solver.Sat m ->
        incr count;
        Solver.add_clause s (List.map (fun v -> if m.(v) then -v else v) vs)
    | Solver.Unsat -> continue := false
  done;
  Alcotest.(check int) "model count" 7 !count

let test_randomize_sound () =
  let s = Solver.create () in
  let vs = fresh_vars s 8 in
  List.iteri (fun i v -> if i mod 2 = 0 then Solver.add_clause s [ v ]) vs;
  for seed = 0 to 20 do
    Solver.randomize s ~seed;
    let m = expect_sat s in
    List.iteri
      (fun i v ->
        if i mod 2 = 0 then Alcotest.(check bool) "forced stays true" true m.(v))
      vs
  done

(* -- Cnf helpers -- *)

let count_models s vs =
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Solver.solve s with
    | Solver.Sat m ->
        incr count;
        Solver.add_clause s (List.map (fun v -> if m.(v) then -v else v) vs)
    | Solver.Unsat -> continue := false
  done;
  !count

let test_exactly_one () =
  let s = Solver.create () in
  let vs = fresh_vars s 5 in
  Cnf.exactly_one s vs;
  Alcotest.(check int) "5 models" 5 (count_models s vs)

let test_at_most_one () =
  let s = Solver.create () in
  let vs = fresh_vars s 4 in
  Cnf.at_most_one s vs;
  Alcotest.(check int) "4 + empty" 5 (count_models s vs)

let binom n k =
  let rec go n k = if k = 0 then 1 else go (n - 1) (k - 1) * n / k in
  go n k

let test_at_most_k () =
  let n = 6 and k = 2 in
  let s = Solver.create () in
  let vs = fresh_vars s n in
  Cnf.at_most_k s vs k;
  let expected = binom n 0 + binom n 1 + binom n 2 in
  Alcotest.(check int) "sum of binomials" expected (count_models s vs)

let test_at_most_k_zero () =
  let s = Solver.create () in
  let vs = fresh_vars s 3 in
  Cnf.at_most_k s vs 0;
  Alcotest.(check int) "only empty" 1 (count_models s vs)

let test_at_most_k_slack () =
  let s = Solver.create () in
  let vs = fresh_vars s 3 in
  Cnf.at_most_k s vs 5;
  Alcotest.(check int) "unconstrained" 8 (count_models s vs)

let test_define_and () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  let x = Cnf.define_and s [ a; b ] in
  (match Solver.solve ~assumptions:[ a; b ] s with
  | Solver.Sat m -> Alcotest.(check bool) "and true" true m.(x)
  | Solver.Unsat -> Alcotest.fail "sat expected");
  match Solver.solve ~assumptions:[ a; -b ] s with
  | Solver.Sat m -> Alcotest.(check bool) "and false" false m.(x)
  | Solver.Unsat -> Alcotest.fail "sat expected"

let test_define_or () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  let x = Cnf.define_or s [ a; b ] in
  (match Solver.solve ~assumptions:[ -a; b ] s with
  | Solver.Sat m -> Alcotest.(check bool) "or true" true m.(x)
  | Solver.Unsat -> Alcotest.fail "sat expected");
  match Solver.solve ~assumptions:[ -a; -b ] s with
  | Solver.Sat m -> Alcotest.(check bool) "or false" false m.(x)
  | Solver.Unsat -> Alcotest.fail "sat expected"

let test_implies () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Cnf.implies s a b;
  expect_unsat ~assumptions:[ a; -b ] s

let test_at_most_one_commander () =
  (* 10 literals is above the commander threshold: the encoding recurses
     but stays equisatisfiable on the projection — 10 singletons plus the
     empty assignment. (Blocking clauses over the original variables kill
     every commander extension at once, so counting is unaffected.) *)
  let s = Solver.create () in
  let vs = fresh_vars s 10 in
  Cnf.at_most_one s vs;
  Alcotest.(check int) "10 + empty" 11 (count_models s vs)

let prop_commander_equisatisfiable =
  (* For any size and any forced sub-assignment, the commander encoding
     and the pairwise baseline agree on satisfiability. *)
  QCheck.Test.make ~name:"commander at_most_one equisatisfiable with pairwise"
    ~count:100
    QCheck.(pair (int_range 1 14) (int_range 0 3))
    (fun (n, forced) ->
      let forced = min forced n in
      let build amo =
        let s = Solver.create () in
        let vs = fresh_vars s n in
        amo s vs;
        (* Force the first [forced] literals true. *)
        List.iteri (fun i v -> if i < forced then Solver.add_clause s [ v ]) vs;
        match Solver.solve s with Solver.Sat _ -> true | Solver.Unsat -> false
      in
      build Cnf.at_most_one = build Cnf.pairwise_at_most_one)

let test_lex_gadgets () =
  let s = Solver.create () in
  let u = Solver.new_var s in
  let g1 = Solver.new_var s and e1 = Solver.new_var s in
  let g2 = Solver.new_var s and e2 = Solver.new_var s in
  let t = Solver.new_var s in
  Cnf.lex_gt_implies s ~under:[ u ] ~target:t [ (g1, e1); (g2, e2) ];
  (* First digit greater forces the target... *)
  expect_unsat ~assumptions:[ u; g1; -t ] s;
  (* ...so does the second when the first is equal... *)
  expect_unsat ~assumptions:[ u; e1; g2; -t ] s;
  (* ...but not without the equality prefix or the guard. *)
  ignore (expect_sat s);
  (match Solver.solve ~assumptions:[ u; -e1; g2; -t ] s with
  | Solver.Sat _ -> ()
  | Solver.Unsat -> Alcotest.fail "no forcing without eq prefix");
  (match Solver.solve ~assumptions:[ -u; g1; -t ] s with
  | Solver.Sat _ -> ()
  | Solver.Unsat -> Alcotest.fail "no forcing without guard");
  (* lex_le bans the greater sequences outright. *)
  let s2 = Solver.create () in
  let u' = Solver.new_var s2 in
  let g1' = Solver.new_var s2 and e1' = Solver.new_var s2 in
  let g2' = Solver.new_var s2 and e2' = Solver.new_var s2 in
  ignore e2';
  Cnf.lex_le s2 ~under:[ u' ] [ (g1', e1'); (g2', e2') ];
  expect_unsat ~assumptions:[ u'; g1' ] s2;
  expect_unsat ~assumptions:[ u'; e1'; g2' ] s2;
  match Solver.solve ~assumptions:[ -u'; g1' ] s2 with
  | Solver.Sat _ -> ()
  | Solver.Unsat -> Alcotest.fail "lex_le must be guarded"

(* -- Clause groups -- *)

let test_group_activation_and_retire () =
  let s = Solver.create () in
  let a = Solver.new_var s in
  let g = Solver.new_group s in
  Solver.add_clause_in s g [ a ];
  (* Inert without the selector... *)
  (match Solver.solve ~assumptions:[ -a ] s with
  | Solver.Sat _ -> ()
  | Solver.Unsat -> Alcotest.fail "group must be inert unassumed");
  (* ...binding under it... *)
  expect_unsat ~assumptions:[ Solver.group_lit g; -a ] s;
  (* ...and permanently off after retirement. *)
  Solver.retire_group s g;
  expect_unsat ~assumptions:[ Solver.group_lit g ] s;
  (match Solver.solve ~assumptions:[ -a ] s with
  | Solver.Sat _ -> ()
  | Solver.Unsat -> Alcotest.fail "retired group must not constrain");
  Solver.retire_group s g;
  (* Adding to a retired group is a programming error. *)
  match Solver.add_clause_in s g [ a ] with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_group_learnts_survive_retirement () =
  (* Pigeonhole inside a group: solving under the selector learns clauses
     that mention it; after retirement the instance must behave as if the
     group never existed. *)
  let s = Solver.create () in
  let p = Array.init 4 (fun _ -> Array.of_list (fresh_vars s 3)) in
  let g = Solver.new_group s in
  for i = 0 to 3 do
    Solver.add_clause_in s g (Array.to_list p.(i))
  done;
  for h = 0 to 2 do
    for i = 0 to 3 do
      for j = i + 1 to 3 do
        Solver.add_clause_in s g [ -p.(i).(h); -p.(j).(h) ]
      done
    done
  done;
  expect_unsat ~assumptions:[ Solver.group_lit g ] s;
  Solver.retire_group s g;
  (* All pigeon variables are free again. *)
  let m = expect_sat s in
  ignore m;
  match Solver.solve ~assumptions:[ p.(0).(0); p.(1).(0) ] s with
  | Solver.Sat _ -> ()
  | Solver.Unsat -> Alcotest.fail "retired constraints must not bind"

(* -- Learnt-DB reduction -- *)

let test_reduce_db_soundness () =
  (* A tiny learnt ceiling forces many reduction passes mid-search; the
     answer must not change. Pigeonhole 5->4 generates thousands of
     conflicts. *)
  let s = Solver.create () in
  let p = Array.init 5 (fun _ -> Array.of_list (fresh_vars s 4)) in
  Solver.set_max_learnts s 8;
  for i = 0 to 4 do
    Solver.add_clause s (Array.to_list p.(i))
  done;
  for h = 0 to 3 do
    for i = 0 to 4 do
      for j = i + 1 to 4 do
        Solver.add_clause s [ -p.(i).(h); -p.(j).(h) ]
      done
    done
  done;
  expect_unsat s;
  let st = Solver.stats s in
  Alcotest.(check bool) "reductions happened" true
    (st.Solver.db_reductions > 0);
  Alcotest.(check bool) "live learnts bounded below total" true
    (st.Solver.learnts_live <= st.Solver.learnts_total)

let test_enumeration_under_gc () =
  (* Model counting with an aggressive learnt GC: the count is exact
     regardless of which learnt clauses survive. *)
  let n = 6 and k = 2 in
  let s = Solver.create () in
  let vs = fresh_vars s n in
  Cnf.at_most_k s vs k;
  Solver.set_max_learnts s 8;
  let expected = binom n 0 + binom n 1 + binom n 2 in
  Alcotest.(check int) "count under GC" expected (count_models s vs)

let test_stats_move () =
  let s = Solver.create () in
  let vs = Array.of_list (fresh_vars s 10) in
  Solver.add_clause s [ vs.(0) ];
  for i = 0 to 8 do
    Solver.add_clause s [ -vs.(i); vs.(i + 1) ]
  done;
  ignore (expect_sat s);
  let st = Solver.stats s in
  Alcotest.(check bool) "propagations counted" true (st.Solver.propagations >= 10)

(* -- Determinism of randomized enumeration -- *)

let enumerate_with_seeds n_vars n_models =
  (* One fixed formula; randomize with seed i before the i-th solve and
     collect the model bit-strings. *)
  let s = Solver.create () in
  let vs = fresh_vars s n_vars in
  Solver.add_clause s vs;
  Cnf.at_most_k s vs 3;
  let out = ref [] in
  (try
     for i = 1 to n_models do
       Solver.randomize s ~seed:(i * 7919);
       match Solver.solve s with
       | Solver.Unsat -> raise Exit
       | Solver.Sat m ->
           out :=
             String.concat ""
               (List.map (fun v -> if m.(v) then "1" else "0") vs)
             :: !out;
           Solver.add_clause s (List.map (fun v -> if m.(v) then -v else v) vs)
     done
   with Exit -> ());
  List.rev !out

let test_randomize_deterministic () =
  (* The documented contract: fixed seed sequence + identical clause order
     => bit-identical model sequence. *)
  let a = enumerate_with_seeds 9 25 in
  let b = enumerate_with_seeds 9 25 in
  Alcotest.(check (list string)) "bit-identical model sequences" a b;
  Alcotest.(check bool) "non-trivial run" true (List.length a > 5)

(* -- Differential fuzz vs brute force -- *)

let brute_force_sat n clauses =
  let rec go assign v =
    if v = n then
      List.for_all
        (fun c ->
          List.exists
            (fun l -> if l > 0 then assign.(l - 1) else not assign.(-l - 1))
            c)
        clauses
    else begin
      assign.(v) <- true;
      go assign (v + 1)
      ||
      (assign.(v) <- false;
       go assign (v + 1))
    end
  in
  go (Array.make n false) 0

let prop_matches_brute_force =
  QCheck.Test.make ~name:"cdcl agrees with brute force on random 3-SAT"
    ~count:150
    QCheck.(pair (int_range 3 10) (int_range 1 40))
    (fun (n, m) ->
      let rng = Abg_util.Rng.create ((n * 1000) + m) in
      let clauses =
        List.init m (fun _ ->
            List.init 3 (fun _ ->
                let v = 1 + Abg_util.Rng.int rng n in
                if Abg_util.Rng.bool rng then v else -v))
      in
      let s = Solver.create () in
      ignore (fresh_vars s n);
      List.iter (Solver.add_clause s) clauses;
      let expected = brute_force_sat n clauses in
      match Solver.solve s with
      | Solver.Sat model ->
          expected
          && List.for_all
               (fun c ->
                 List.exists
                   (fun l -> if l > 0 then model.(l) else not model.(-l))
                   c)
               clauses
      | Solver.Unsat -> not expected)

let prop_incremental_enumeration_complete =
  QCheck.Test.make ~name:"enumeration finds the brute-force model count"
    ~count:50
    QCheck.(pair (int_range 2 6) (int_range 1 10))
    (fun (n, m) ->
      let rng = Abg_util.Rng.create ((n * 77) + m) in
      let clauses =
        List.init m (fun _ ->
            List.init 2 (fun _ ->
                let v = 1 + Abg_util.Rng.int rng n in
                if Abg_util.Rng.bool rng then v else -v))
      in
      let brute_count = ref 0 in
      let rec go assign v =
        if v = n then begin
          if
            List.for_all
              (fun c ->
                List.exists
                  (fun l -> if l > 0 then assign.(l - 1) else not assign.(-l - 1))
                  c)
              clauses
          then incr brute_count
        end
        else begin
          assign.(v) <- true;
          go assign (v + 1);
          assign.(v) <- false;
          go assign (v + 1)
        end
      in
      go (Array.make n false) 0;
      let s = Solver.create () in
      let vs = fresh_vars s n in
      List.iter (Solver.add_clause s) clauses;
      count_models s vs = !brute_count)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "sat.solver",
      [
        Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
        Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
        Alcotest.test_case "unit propagation chain" `Quick test_unit_propagation_chain;
        Alcotest.test_case "empty formula" `Quick test_empty_formula_sat;
        Alcotest.test_case "pigeonhole 4->3 unsat" `Quick test_pigeonhole_unsat;
        Alcotest.test_case "model satisfies clauses" `Quick test_model_satisfies;
        Alcotest.test_case "assumptions" `Quick test_assumptions;
        Alcotest.test_case "enumeration count" `Quick test_enumeration_count;
        Alcotest.test_case "randomize is sound" `Quick test_randomize_sound;
        Alcotest.test_case "randomize is deterministic" `Quick
          test_randomize_deterministic;
        Alcotest.test_case "groups: activate and retire" `Quick
          test_group_activation_and_retire;
        Alcotest.test_case "groups: learnts survive retirement" `Quick
          test_group_learnts_survive_retirement;
        Alcotest.test_case "learnt-DB reduction sound" `Quick
          test_reduce_db_soundness;
        Alcotest.test_case "enumeration under GC" `Quick
          test_enumeration_under_gc;
        Alcotest.test_case "stats" `Quick test_stats_move;
      ]
      @ qcheck [ prop_matches_brute_force; prop_incremental_enumeration_complete ]
    );
    ( "sat.cnf",
      [
        Alcotest.test_case "exactly_one" `Quick test_exactly_one;
        Alcotest.test_case "at_most_one" `Quick test_at_most_one;
        Alcotest.test_case "at_most_one commander" `Quick
          test_at_most_one_commander;
        Alcotest.test_case "at_most_k counts" `Quick test_at_most_k;
        Alcotest.test_case "at_most_k zero" `Quick test_at_most_k_zero;
        Alcotest.test_case "at_most_k slack" `Quick test_at_most_k_slack;
        Alcotest.test_case "define_and" `Quick test_define_and;
        Alcotest.test_case "define_or" `Quick test_define_or;
        Alcotest.test_case "implies" `Quick test_implies;
        Alcotest.test_case "lex gadgets" `Quick test_lex_gadgets;
      ]
      @ qcheck [ prop_commander_equisatisfiable ] );
  ]
