(* Tests for the serving layer: sliding-window state (qcheck equivalence
   against batch recompute), incremental line framing and trace
   streaming, the wire protocol, the engine's session lifecycle and
   determinism, escalation dedupe/backpressure, the pool's background
   lane, and an end-to-end daemon run over a real unix socket. *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* -- Sliding window: streaming state == batch recompute -- *)

(* Build a record whose observed window is [v] at time [t]; every other
   field is irrelevant to the sliding window. *)
let record ~time v =
  {
    Abg_trace.Record.time; cwnd = v; in_flight = v;
    acked_bytes = 0.0; rtt = 0.05; min_rtt = 0.05; max_rtt = 0.05;
    ack_rate = 1e6; rtt_gradient = 0.0; delay_gradient = 0.0;
    time_since_loss = 0.0; wmax = v; mss = 1448.0;
  }

let records_of_values values =
  Array.mapi (fun i v -> record ~time:(0.01 *. float_of_int i) v) values

(* The batch reference model: the window is the last [cap] records; the
   in-window losses are the full-stream pairwise detections (the
   {!Abg_trace.Segmentation.infer_loss_times} rule) whose detecting
   index still lies inside the window. *)
let batch_window ~cap values =
  let n = Array.length values in
  let len = Stdlib.min n cap in
  let window = Array.sub values (n - len) len in
  let losses = ref [] in
  for i = 1 to n - 1 do
    let prev = values.(i - 1) and cur = values.(i) in
    if prev > 0.0 && cur < 0.8 *. prev && i >= n - len then
      losses := (0.01 *. float_of_int i) :: !losses
  done;
  (window, Array.of_list (List.rev !losses))

(* Observations: positive values, zeros, and occasional nan/inf — the
   detection comparison must treat non-finite samples as "no loss"
   identically on the streaming and batch sides. *)
let arb_observations =
  QCheck.(
    make
      ~print:(fun (cap, vs) ->
        Printf.sprintf "cap=%d [%s]" cap
          (String.concat ";" (List.map string_of_float (Array.to_list vs))))
      Gen.(
        pair (int_range 2 12)
          (map Array.of_list
             (list_size (int_range 0 60)
                (frequency
                   [
                     (8, float_range 0.0 5000.0);
                     (1, return 0.0);
                     (1, oneofl [ Float.nan; Float.infinity ]);
                   ])))))

let prop_sliding_equals_batch =
  QCheck.Test.make ~name:"sliding state == batch recompute" ~count:500
    arb_observations (fun (cap, values) ->
      let s = Abg_serve.Sliding.create ~capacity:cap in
      Array.iter (fun r -> Abg_serve.Sliding.push s r) (records_of_values values);
      let window, losses = batch_window ~cap values in
      let streamed =
        Array.init (Abg_serve.Sliding.length s) (Abg_serve.Sliding.observed s)
      in
      (* nan <> nan, so compare windows positionally with nan-equality. *)
      let same_window =
        Array.length streamed = Array.length window
        && Array.for_all2
             (fun a b -> a = b || (Float.is_nan a && Float.is_nan b))
             streamed window
      in
      same_window && Abg_serve.Sliding.loss_times s = losses)

(* Window boundaries by hand: a loss detected exactly at the oldest
   in-window index survives; one index older is evicted. *)
let test_sliding_loss_eviction () =
  let s = Abg_serve.Sliding.create ~capacity:3 in
  (* Index:    0      1     2      3      4
     Values: 100 -> 10 -> 100 -> 100 -> 100
     Loss detected at index 1 (10 < 80). Window after 4 pushes covers
     indices [1, 4) = {1,2,3}: loss at 1 is the oldest in-window index.
     After the 5th push the window is {2,3,4}: evicted. *)
  let vs = [| 100.0; 10.0; 100.0; 100.0 |] in
  Array.iter (fun r -> Abg_serve.Sliding.push s r) (records_of_values vs);
  Alcotest.(check int) "loss on boundary survives" 1
    (Array.length (Abg_serve.Sliding.loss_times s));
  Abg_serve.Sliding.push s (record ~time:0.04 100.0);
  Alcotest.(check int) "loss evicted one past boundary" 0
    (Array.length (Abg_serve.Sliding.loss_times s))

let test_sliding_to_trace () =
  let s = Abg_serve.Sliding.create ~capacity:4 in
  let vs = [| 50.0; 60.0; 70.0; 10.0; 20.0; 30.0 |] in
  Array.iter (fun r -> Abg_serve.Sliding.push s r) (records_of_values vs);
  let t = Abg_serve.Sliding.to_trace ~cca_name:"x" ~scenario:"y" s in
  Alcotest.(check int) "trace length = window" 4 (Abg_trace.Trace.length t);
  Alcotest.(check (float 1e-9)) "oldest in-window record" 70.0
    (Abg_trace.Record.observed_cwnd t.Abg_trace.Trace.records.(0));
  Alcotest.(check int) "in-window loss carried" 1
    (Array.length t.Abg_trace.Trace.loss_times)

(* -- Io.Lines: framing is independent of chunk boundaries -- *)

let prop_lines_chunking_invariant =
  (* Any split of the byte stream into chunks yields the same emitted
     lines as feeding it whole. *)
  QCheck.Test.make ~name:"Io.Lines invariant under chunk splits" ~count:300
    QCheck.(
      pair
        (small_list (string_gen_of_size Gen.(int_range 0 8) Gen.printable))
        (small_list small_nat))
    (fun (lines_in, cuts) ->
      let payload = String.concat "\n" lines_in in
      let collect feed_chunks =
        let t = Abg_trace.Io.Lines.create () in
        let out = ref [] in
        let emit n l = out := (n, l) :: !out in
        List.iter (fun c -> Abg_trace.Io.Lines.feed t c emit) feed_chunks;
        Abg_trace.Io.Lines.flush t emit;
        List.rev !out
      in
      let whole = collect [ payload ] in
      let chunks =
        let rec split s = function
          | [] -> [ s ]
          | k :: rest ->
              let k = Stdlib.min k (String.length s) in
              String.sub s 0 k
              :: split (String.sub s k (String.length s - k)) rest
        in
        split payload cuts
      in
      collect chunks = whole)

let test_lines_crlf_and_tail () =
  let t = Abg_trace.Io.Lines.create () in
  let out = ref [] in
  let emit n l = out := (n, l) :: !out in
  Abg_trace.Io.Lines.feed t "a\r\nb\nc" emit;
  Alcotest.(check bool) "tail buffered" true (Abg_trace.Io.Lines.pending t);
  Abg_trace.Io.Lines.flush t emit;
  Alcotest.(check bool) "tail flushed" false (Abg_trace.Io.Lines.pending t);
  Alcotest.(check (list (pair int string)))
    "CR stripped, lines numbered"
    [ (1, "a"); (2, "b"); (3, "c") ]
    (List.rev !out)

(* -- Io.Stream: incremental parse == batch parse -- *)

let sample_trace =
  lazy
    (let cfg =
       Abg_netsim.Config.make ~duration:2.0 ~bandwidth_mbps:8.0 ~rtt_ms:40.0 ()
     in
     Abg_trace.Trace.collect cfg ~name:"reno" (fun ~mss () ->
         Abg_cca.Reno.create ~mss ()))

let test_stream_matches_batch_parse () =
  let t = Lazy.force sample_trace in
  let text = Abg_trace.Io.to_string t in
  let s = Abg_trace.Io.Stream.create () in
  String.split_on_char '\n' text
  |> List.iter (fun line -> ignore (Abg_trace.Io.Stream.push s line));
  let streamed = Abg_trace.Io.Stream.to_trace s in
  let batch = Abg_trace.Io.of_string text in
  Alcotest.(check string) "cca" batch.Abg_trace.Trace.cca_name
    streamed.Abg_trace.Trace.cca_name;
  Alcotest.(check int) "records"
    (Abg_trace.Trace.length batch)
    (Abg_trace.Trace.length streamed);
  Alcotest.(check bool) "records identical" true
    (batch.Abg_trace.Trace.records = streamed.Abg_trace.Trace.records);
  Alcotest.(check (option string)) "cca_name meta" (Some "reno")
    (Abg_trace.Io.Stream.cca_name s)

let test_stream_error_position () =
  let s = Abg_trace.Io.Stream.create () in
  ignore (Abg_trace.Io.Stream.push s "# cca: reno");
  ignore (Abg_trace.Io.Stream.push s "");
  match Abg_trace.Io.Stream.push s "not a record" with
  | _ -> Alcotest.fail "malformed line accepted"
  | exception Invalid_argument msg ->
      (* 1-based position in this session's stream: third line pushed. *)
      Alcotest.(check bool)
        (Printf.sprintf "error names line 3: %s" msg)
        true (String.contains msg '3')

(* -- Protocol -- *)

let test_protocol_parse () =
  let open Abg_serve.Protocol in
  Alcotest.(check bool) "open" true (parse "open s1" = Ok (Open "s1"));
  Alcotest.(check bool) "obs keeps payload whitespace" true
    (parse "obs s1 1.0\t2.0\t3.0" = Ok (Obs ("s1", "1.0\t2.0\t3.0")));
  Alcotest.(check bool) "classify" true (parse "classify s1" = Ok (Classify "s1"));
  Alcotest.(check bool) "close" true (parse "close s1" = Ok (Close "s1"));
  Alcotest.(check bool) "stats" true (parse "stats" = Ok Stats);
  Alcotest.(check bool) "ping" true (parse "ping" = Ok Ping);
  Alcotest.(check bool) "crlf tolerated" true (parse "ping\r" = Ok Ping);
  Alcotest.(check bool) "blank is silent" true (parse "   " = Error "");
  (match parse "open" with
  | Error msg -> Alcotest.(check bool) "missing sid is an error" true (msg <> "")
  | Ok _ -> Alcotest.fail "open without sid accepted");
  match parse "frobnicate s1" with
  | Error msg ->
      Alcotest.(check bool) "unknown command named" true
        (contains_sub ~sub:"frobnicate" msg)
  | Ok _ -> Alcotest.fail "unknown command accepted"

(* -- Engine -- *)

let trace_lines t =
  String.split_on_char '\n' (Abg_trace.Io.to_string t)
  |> List.filter (fun l -> l <> "")

let feed_trace engine sid t =
  List.iter
    (fun l ->
      Alcotest.(check (list string))
        "obs lines are not acked" []
        (Abg_serve.Engine.handle_line engine ("obs " ^ sid ^ " " ^ l)))
    (trace_lines t)

let test_engine_session_lifecycle () =
  let engine = Abg_serve.Engine.create () in
  Alcotest.(check (list string)) "open" [ "ok open a" ]
    (Abg_serve.Engine.handle_line engine "open a");
  (match Abg_serve.Engine.handle_line engine "open a" with
  | [ reply ] ->
      Alcotest.(check bool) "duplicate open is an error" true
        (String.length reply >= 5 && String.sub reply 0 5 = "err a")
  | other ->
      Alcotest.failf "unexpected replies: %s" (String.concat "|" other));
  (match Abg_serve.Engine.handle_line engine "classify nosuch" with
  | [ reply ] ->
      Alcotest.(check bool) "classify unknown sid errors" true
        (String.length reply >= 3 && String.sub reply 0 3 = "err")
  | other ->
      Alcotest.failf "unexpected replies: %s" (String.concat "|" other));
  Alcotest.(check int) "one session" 1 (Abg_serve.Engine.session_count engine);
  (match Abg_serve.Engine.handle_line engine "close a" with
  | [ verdict; ok ] ->
      Alcotest.(check bool) "close reports a verdict" true
        (String.sub verdict 0 7 = "verdict");
      Alcotest.(check string) "close acked" "ok close a" ok
  | other ->
      Alcotest.failf "unexpected replies: %s" (String.concat "|" other));
  Alcotest.(check int) "no sessions" 0 (Abg_serve.Engine.session_count engine)

let test_engine_session_limit () =
  let config =
    { Abg_serve.Engine.default_config with max_sessions = 2 }
  in
  let engine = Abg_serve.Engine.create ~config () in
  ignore (Abg_serve.Engine.handle_line engine "open a");
  ignore (Abg_serve.Engine.handle_line engine "open b");
  match Abg_serve.Engine.handle_line engine "open c" with
  | [ reply ] ->
      Alcotest.(check bool) "session limit enforced" true
        (contains_sub ~sub:"limit" reply)
  | other -> Alcotest.failf "unexpected replies: %s" (String.concat "|" other)

let test_engine_obs_error_has_position () =
  let engine = Abg_serve.Engine.create () in
  ignore (Abg_serve.Engine.handle_line engine "open a");
  ignore (Abg_serve.Engine.handle_line engine "obs a # cca: reno");
  match Abg_serve.Engine.handle_line engine "obs a garbage" with
  | [ reply ] ->
      Alcotest.(check bool) "err echoes sid" true
        (String.sub reply 0 5 = "err a");
      Alcotest.(check bool) "err carries 1-based stream position" true
        (String.contains reply '2')
  | other -> Alcotest.failf "unexpected replies: %s" (String.concat "|" other)

let test_engine_short_window_unknown () =
  let engine = Abg_serve.Engine.create () in
  ignore (Abg_serve.Engine.handle_line engine "open a");
  match Abg_serve.Engine.handle_line engine "classify a" with
  | [ verdict ] ->
      Alcotest.(check bool) "empty window classifies Unknown" true
        (contains_sub ~sub:"Unknown" verdict)
  | other -> Alcotest.failf "unexpected replies: %s" (String.concat "|" other)

let test_engine_verdicts_deterministic () =
  (* Same request stream, two fresh engines: byte-identical replies. *)
  let t = Lazy.force sample_trace in
  let run () =
    let engine = Abg_serve.Engine.create () in
    ignore (Abg_serve.Engine.handle_line engine "open a");
    feed_trace engine "a" t;
    Abg_serve.Engine.handle_line engine "close a"
  in
  Alcotest.(check (list string)) "replayed verdicts identical" (run ()) (run ())

let test_engine_drain_sorted () =
  let engine = Abg_serve.Engine.create () in
  List.iter
    (fun sid -> ignore (Abg_serve.Engine.handle_line engine ("open " ^ sid)))
    [ "zeta"; "alpha"; "mid" ];
  let drained = Abg_serve.Engine.drain engine in
  Alcotest.(check int) "all sessions closed" 0
    (Abg_serve.Engine.session_count engine);
  let closes =
    List.filter_map
      (fun l ->
        if String.length l > 9 && String.sub l 0 9 = "ok close " then
          Some (String.sub l 9 (String.length l - 9))
        else None)
      drained
  in
  Alcotest.(check (list string)) "drain closes in sorted sid order"
    [ "alpha"; "mid"; "zeta" ] closes

(* -- Escalation -- *)

let test_escalate_dedupe_and_cap () =
  let pool = Abg_parallel.Pool.create ~size:0 () in
  Fun.protect ~finally:(fun () -> Abg_parallel.Pool.shutdown pool)
  @@ fun () ->
  let ran = ref [] in
  (* size 0: tasks queue until drain, so [pending] stays observable. *)
  let esc =
    Abg_serve.Escalate.create ~pool ~max_pending:2 (fun ~sid _trace ->
        ran := sid :: !ran)
  in
  let t1 = Abg_serve.Sliding.create ~capacity:8 in
  Array.iter (fun r -> Abg_serve.Sliding.push t1 r)
    (records_of_values [| 1.0; 2.0; 3.0 |]);
  let tr1 = Abg_serve.Sliding.to_trace t1 in
  let t2 = Abg_serve.Sliding.create ~capacity:8 in
  Array.iter (fun r -> Abg_serve.Sliding.push t2 r)
    (records_of_values [| 9.0; 8.0; 7.0 |]);
  let tr2 = Abg_serve.Sliding.to_trace t2 in
  Alcotest.(check bool) "first submit accepted" true
    (Abg_serve.Escalate.submit esc ~sid:"a" tr1 = Abg_serve.Escalate.Submitted);
  Alcotest.(check bool) "identical window deduped" true
    (Abg_serve.Escalate.submit esc ~sid:"b" tr1 = Abg_serve.Escalate.Duplicate);
  Alcotest.(check bool) "second distinct accepted" true
    (Abg_serve.Escalate.submit esc ~sid:"c" tr2 = Abg_serve.Escalate.Submitted);
  let t3 = Abg_serve.Sliding.create ~capacity:8 in
  Array.iter (fun r -> Abg_serve.Sliding.push t3 r)
    (records_of_values [| 4.0; 5.0; 6.0 |]);
  Alcotest.(check bool) "over budget dropped" true
    (Abg_serve.Escalate.submit esc ~sid:"d" (Abg_serve.Sliding.to_trace t3)
    = Abg_serve.Escalate.Dropped);
  Alcotest.(check int) "two pending" 2 (Abg_serve.Escalate.pending esc);
  Abg_serve.Escalate.drain esc;
  Alcotest.(check int) "drain runs everything" 0
    (Abg_serve.Escalate.pending esc);
  Alcotest.(check (list string)) "runner saw both" [ "a"; "c" ]
    (List.sort String.compare !ran)

(* -- Pool background lane -- *)

let test_pool_background_runs_and_isolates_failures () =
  let pool = Abg_parallel.Pool.create ~size:2 () in
  Fun.protect ~finally:(fun () -> Abg_parallel.Pool.shutdown pool)
  @@ fun () ->
  let hits = Atomic.make 0 in
  for _ = 1 to 20 do
    Abg_parallel.Pool.background ~pool (fun () -> Atomic.incr hits)
  done;
  (* A throwing task must be swallowed, not kill a worker. *)
  Abg_parallel.Pool.background ~pool (fun () -> failwith "boom");
  for _ = 1 to 20 do
    Abg_parallel.Pool.background ~pool (fun () -> Atomic.incr hits)
  done;
  Abg_parallel.Pool.drain_background ~pool ();
  Alcotest.(check int) "all background tasks ran" 40 (Atomic.get hits);
  (* Foreground work still functions after background churn. *)
  let doubled = Abg_parallel.Pool.map ~pool (fun x -> x * 2) [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "foreground map unaffected" [| 2; 4; 6 |] doubled

let test_pool_background_zero_worker_drain () =
  let pool = Abg_parallel.Pool.create ~size:0 () in
  Fun.protect ~finally:(fun () -> Abg_parallel.Pool.shutdown pool)
  @@ fun () ->
  let hits = ref 0 in
  for _ = 1 to 5 do
    Abg_parallel.Pool.background ~pool (fun () -> incr hits)
  done;
  Alcotest.(check int) "nothing ran without workers" 0 !hits;
  Abg_parallel.Pool.drain_background ~pool ();
  Alcotest.(check int) "drain runs queued tasks on the caller" 5 !hits

(* -- Daemon end-to-end over a unix socket -- *)

(* The daemon runs in a thread, not a forked child: reference warm-up
   uses the domain pool, and forking a multi-domain process is
   unsupported. Process-level semantics (SIGTERM, exit code) are the CI
   smoke test's job, against the real binary; here {!Daemon.request_stop}
   plays the signal's role and a returned [run] plays the clean exit. *)
let test_daemon_end_to_end () =
  let dir = Filename.temp_file "abg-serve" "" in
  Unix.unlink dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "d.sock" in
  let endpoint = Abg_serve.Daemon.Unix_socket socket in
  let drained = ref false in
  let config =
    { Abg_serve.Daemon.default_config with endpoint; log = (fun _ -> ()) }
  in
  let daemon =
    Thread.create
      (fun () ->
        Abg_serve.Daemon.run ~config ();
        drained := true)
      ()
  in
  Fun.protect ~finally:(fun () ->
      Abg_serve.Daemon.request_stop ();
      Thread.join daemon;
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* Wait for the socket to appear (warm-up precedes listen). *)
  let deadline = Unix.gettimeofday () +. 120.0 in
  while (not (Sys.file_exists socket)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.05
  done;
  Alcotest.(check bool) "daemon came up" true (Sys.file_exists socket);
  let t = Lazy.force sample_trace in
  let replies = Abg_serve.Client.stream endpoint [ ("f1", t); ("f2", t) ] in
  let vs = Abg_serve.Client.verdicts replies in
  Alcotest.(check int) "one verdict per flow" 2 (List.length vs);
  (match vs with
  | (sid1, n1, d1, v1) :: (sid2, n2, d2, v2) :: _ ->
      Alcotest.(check string) "flow order" "f1" sid1;
      Alcotest.(check string) "flow order" "f2" sid2;
      Alcotest.(check bool) "windows filled" true (n1 > 0 && n1 = n2);
      (* Identical input streams must classify identically. *)
      Alcotest.(check string) "same trace, same verdict" v1 v2;
      Alcotest.(check (float 1e-12)) "same trace, same distance" d1 d2
  | _ -> Alcotest.fail "missing verdicts");
  (* Liveness plus stats shape. *)
  let stats =
    Abg_serve.Client.execute endpoint ~request:"stats\nping\n"
      ~stop_line:(fun l -> l = "ok pong")
  in
  Alcotest.(check bool) "stats line present" true
    (List.exists (fun l -> has_prefix ~prefix:"ok stats " l) stats);
  Alcotest.(check bool) "latency line present" true
    (List.exists (fun l -> has_prefix ~prefix:"ok latency " l) stats);
  (* Graceful shutdown: stop request drains, removes the socket file,
     and [run] returns. *)
  Abg_serve.Daemon.request_stop ();
  Thread.join daemon;
  Alcotest.(check bool) "run returned cleanly" true !drained;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

let qsuite = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "serve-sliding",
      [
        Alcotest.test_case "loss eviction at boundary" `Quick
          test_sliding_loss_eviction;
        Alcotest.test_case "to_trace materializes window" `Quick
          test_sliding_to_trace;
      ]
      @ qsuite [ prop_sliding_equals_batch ] );
    ( "serve-framing",
      [
        Alcotest.test_case "crlf + unterminated tail" `Quick
          test_lines_crlf_and_tail;
        Alcotest.test_case "stream == batch parse" `Quick
          test_stream_matches_batch_parse;
        Alcotest.test_case "stream error position" `Quick
          test_stream_error_position;
      ]
      @ qsuite [ prop_lines_chunking_invariant ] );
    ( "serve-engine",
      [
        Alcotest.test_case "protocol parse" `Quick test_protocol_parse;
        Alcotest.test_case "session lifecycle" `Quick
          test_engine_session_lifecycle;
        Alcotest.test_case "session limit" `Quick test_engine_session_limit;
        Alcotest.test_case "obs error position" `Quick
          test_engine_obs_error_has_position;
        Alcotest.test_case "short window is Unknown" `Quick
          test_engine_short_window_unknown;
        Alcotest.test_case "verdicts deterministic" `Slow
          test_engine_verdicts_deterministic;
        Alcotest.test_case "drain in sorted sid order" `Quick
          test_engine_drain_sorted;
      ] );
    ( "serve-escalate",
      [
        Alcotest.test_case "dedupe + pending cap" `Quick
          test_escalate_dedupe_and_cap;
        Alcotest.test_case "background lane runs, failures isolated" `Quick
          test_pool_background_runs_and_isolates_failures;
        Alcotest.test_case "zero-worker drain" `Quick
          test_pool_background_zero_worker_drain;
      ] );
    ( "serve-daemon",
      [ Alcotest.test_case "end-to-end over unix socket" `Slow
          test_daemon_end_to_end ] );
  ]
