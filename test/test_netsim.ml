(* Tests for the discrete-event network simulator. *)

open Abg_netsim

let quick_config ?(duration = 5.0) ?(bandwidth_mbps = 10.0) ?(rtt_ms = 50.0) ()
    =
  Config.make ~duration ~bandwidth_mbps ~rtt_ms ()

(* -- Event queue -- *)

let test_event_queue_order () =
  let q = Event_queue.create ~dummy:"" () in
  Event_queue.push q ~time:3.0 ~aux:0.0 "c";
  Event_queue.push q ~time:1.0 ~aux:0.0 "a";
  Event_queue.push q ~time:2.0 ~aux:0.0 "b";
  let pops = List.init 3 (fun _ -> Event_queue.pop q) in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] pops;
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_event_queue_fifo_ties () =
  let q = Event_queue.create ~dummy:"" () in
  Event_queue.push q ~time:1.0 ~aux:0.0 "first";
  Event_queue.push q ~time:1.0 ~aux:0.0 "second";
  Alcotest.(check string) "insertion order on ties" "first" (Event_queue.pop q)

let test_event_queue_popped_metadata () =
  let q = Event_queue.create ~dummy:0 () in
  Event_queue.push q ~time:2.0 ~aux:42.0 7;
  Event_queue.push q ~time:1.0 ~aux:13.0 5;
  Alcotest.(check int) "payload" 5 (Event_queue.pop q);
  Alcotest.(check (float 0.0)) "popped time" 1.0 (Event_queue.popped_time q);
  Alcotest.(check (float 0.0)) "popped aux" 13.0 (Event_queue.popped_aux q);
  Alcotest.(check int) "second payload" 7 (Event_queue.pop q);
  Alcotest.(check (float 0.0)) "second aux" 42.0 (Event_queue.popped_aux q);
  Alcotest.(check int) "pushed counter" 2 (Event_queue.events_pushed q);
  Alcotest.(check int) "heap peak" 2 (Event_queue.heap_peak q)

(* The rewritten heap must pop in exactly (time, insertion-order): drain
   the queue and compare against a stable sort by time, whose tie handling
   is precisely insertion order. Times are drawn from a handful of
   distinct values so simultaneous events are common. *)
let prop_event_queue_reference_order =
  QCheck.Test.make ~name:"pops match stable sort by (time, insertion)"
    ~count:500
    QCheck.(
      list_of_size (Gen.int_range 0 200)
        (map (fun k -> float_of_int k /. 4.0) (int_range 0 10)))
    (fun times ->
      let q = Event_queue.create ~dummy:(-1) () in
      List.iteri (fun i t -> Event_queue.push q ~time:t ~aux:0.0 i) times;
      let popped = ref [] in
      while not (Event_queue.is_empty q) do
        let payload = Event_queue.pop q in
        popped := (Event_queue.popped_time q, payload) :: !popped
      done;
      let popped = List.rev !popped in
      let expected =
        List.mapi (fun i t -> (t, i)) times
        |> List.stable_sort (fun (t1, _) (t2, _) -> Float.compare t1 t2)
      in
      popped = expected)

let prop_event_queue_sorted =
  QCheck.Test.make ~name:"pops are time-sorted" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 100) (float_range 0.0 100.0))
    (fun times ->
      let q = Event_queue.create ~dummy:() () in
      List.iter (fun t -> Event_queue.push q ~time:t ~aux:0.0 ()) times;
      let rec drain last =
        if Event_queue.is_empty q then true
        else begin
          let () = Event_queue.pop q in
          let t = Event_queue.popped_time q in
          t >= last && drain t
        end
      in
      drain neg_infinity)

(* -- Config -- *)

let test_config_bdp () =
  let cfg = quick_config () in
  Alcotest.(check (float 1.0)) "bdp" 62500.0 (Config.bdp cfg)

let test_config_grid_spans_ranges () =
  let grid = Config.testbed_grid ~n:25 () in
  let rtts = List.map (fun c -> c.Config.rtt_prop) grid in
  let bws = List.map (fun c -> c.Config.bandwidth_bps) grid in
  Alcotest.(check bool) "min rtt 10ms" true (List.mem 0.01 rtts);
  Alcotest.(check bool) "max rtt 100ms" true (List.mem 0.1 rtts);
  Alcotest.(check bool) "min bw 5M" true (List.mem 5e6 bws);
  Alcotest.(check bool) "max bw 15M" true (List.mem 15e6 bws)

let test_config_grid_subset () =
  let grid = Config.testbed_grid ~n:4 () in
  Alcotest.(check bool) "roughly n configs" true
    (List.length grid >= 3 && List.length grid <= 6)

(* Pin the exact n=5 testbed subset: the batch orchestrator's job
   digests (and so its journals and shard assignments) are derived from
   these configs, so any drift here silently invalidates persisted runs.
   If the grid must change, bump this test AND expect old run
   directories to re-execute everything on resume. *)
let test_config_grid_pinned_n5 () =
  let expected =
    (* (rtt_ms, bandwidth_mbps, seed): the even stride over the 25-point
       grid keeps every RTT at the lowest bandwidth. *)
    [
      (10.0, 5.0, 5010);
      (25.0, 5.0, 5025);
      (50.0, 5.0, 5050);
      (75.0, 5.0, 5075);
      (100.0, 5.0, 5100);
    ]
  in
  let grid = Config.testbed_grid ~n:5 () in
  Alcotest.(check int) "five configs" 5 (List.length grid);
  List.iter2
    (fun (rtt_ms, bw_mbps, seed) cfg ->
      Alcotest.(check (float 0.0)) "rtt" (rtt_ms /. 1000.0) cfg.Config.rtt_prop;
      Alcotest.(check (float 0.0)) "bw" (bw_mbps *. 1e6) cfg.Config.bandwidth_bps;
      Alcotest.(check int) "seed" seed cfg.Config.seed;
      Alcotest.(check (float 0.0)) "default ack jitter" 0.001
        cfg.Config.ack_jitter)
    expected grid;
  (* Seeded regression: the digests themselves, bit for bit. *)
  Alcotest.(check string) "first digest pinned"
    "0x1.312dp+22|0x1.47ae147ae147bp-7|12|0x1.6ap+10|0x1.ep+4|5010|0x0p+0|0x1.0624dd2f1a9fcp-10"
    (Config.digest (List.hd grid))

let test_config_digest_covers_every_field () =
  (* [Config.perturbations] is the exhaustiveness pact: one named
     single-field variant per record field (the compiler forces new
     fields through [rebuild], review forces them here). Check against
     both a plain §3.2 base and an already-extended one, so the v2
     digest section is exercised too. *)
  let extended =
    {
      Config.default with
      Config.bandwidth_steps = [ (2.0, 8e6) ];
      cross = [ Config.Constant { rate_bps = 1e6 } ];
      outage_rate = 0.1;
      outage_duration = 0.1;
      reorder_prob = 0.02;
      reorder_delay = 0.01;
      qdisc = Config.Red { min_th = 4; max_th = 12; max_p = 0.1 };
    }
  in
  List.iter
    (fun base ->
      let variants = Config.perturbations base in
      Alcotest.(check bool) "one perturbation per field" true
        (List.length variants >= 15);
      List.iter
        (fun (field, v) ->
          Alcotest.(check bool)
            (field ^ " changes the digest")
            false
            (String.equal (Config.digest base) (Config.digest v)))
        variants;
      let digests = List.map (fun (_, v) -> Config.digest v) variants in
      Alcotest.(check int) "perturbed digests pairwise distinct"
        (List.length digests)
        (List.length (List.sort_uniq String.compare digests)))
    [ Config.testbed_grid ~n:1 () |> List.hd; extended ];
  let base = Config.testbed_grid ~n:1 () |> List.hd in
  (* In particular ack_jitter: an ULP-sized nudge must show. *)
  let nudged =
    { base with Config.ack_jitter = Float.succ base.Config.ack_jitter }
  in
  Alcotest.(check bool) "ack_jitter ULP visible" false
    (String.equal (Config.digest base) (Config.digest nudged))

let test_config_of_digest_roundtrip () =
  List.iter
    (fun cfg ->
      match Config.of_digest (Config.digest cfg) with
      | None -> Alcotest.fail "digest did not parse back"
      | Some cfg' ->
          Alcotest.(check string) "lossless inverse" (Config.digest cfg)
            (Config.digest cfg');
          Alcotest.(check bool) "structurally equal" true (cfg = cfg'))
    (Config.testbed_grid ~n:25 ()
    @ [
        { Config.default with Config.loss_rate = 0.015; ack_jitter = 0.25e-3 };
        (* extended configs round-trip through the v2 digest section *)
        {
          Config.default with
          Config.bandwidth_steps = [ (1.5, 4e6); (3.0, 12e6) ];
          cross =
            [
              Config.Constant { rate_bps = 2e6 };
              Config.On_off { rate_bps = 5e6; on_s = 1.0; off_s = 0.5 };
            ];
          outage_rate = 0.2;
          outage_duration = 0.15;
          reorder_prob = 0.03;
          reorder_delay = 0.02;
          qdisc = Config.Red { min_th = 5; max_th = 15; max_p = 0.1 };
        };
      ]);
  Alcotest.(check bool) "garbage rejected" true
    (Config.of_digest "not|a|config" = None)

let test_config_rwnd () =
  let cfg = quick_config () in
  Alcotest.(check bool) "rwnd above capacity" true
    (Config.rwnd cfg
    > Config.bdp cfg +. (float_of_int cfg.Config.queue_capacity *. cfg.Config.mss))

(* -- Simulation -- *)

let run_reno ?duration ?bandwidth_mbps ?rtt_ms () =
  let cfg = quick_config ?duration ?bandwidth_mbps ?rtt_ms () in
  let cca = Abg_cca.Reno.create ~mss:cfg.Config.mss () in
  (cfg, Sim.run cfg cca)

let test_sim_progresses () =
  let _, stats = run_reno () in
  Alcotest.(check bool) "acks processed" true (stats.Sim.acks_processed > 100);
  Alcotest.(check bool) "bytes delivered" true (stats.Sim.delivered_bytes > 0.0)

let test_sim_utilization () =
  let cfg, stats = run_reno ~duration:10.0 () in
  let utilization =
    stats.Sim.delivered_bytes *. 8.0
    /. (cfg.Config.bandwidth_bps *. cfg.Config.duration)
  in
  Alcotest.(check bool) "reno fills the link" true (utilization > 0.8)

let test_sim_never_exceeds_link () =
  let cfg, stats = run_reno ~duration:10.0 () in
  Alcotest.(check bool) "<= link capacity" true
    (stats.Sim.delivered_bytes *. 8.0
    <= cfg.Config.bandwidth_bps *. cfg.Config.duration *. 1.02)

let test_sim_counters () =
  let _, stats = run_reno () in
  Alcotest.(check bool) "events processed" true
    (stats.Sim.events_processed > stats.Sim.acks_processed);
  Alcotest.(check bool) "heap peak recorded" true (stats.Sim.heap_peak > 1)

let test_sim_deterministic () =
  let _, s1 = run_reno () in
  let _, s2 = run_reno () in
  Alcotest.(check int) "same acks" s1.Sim.acks_processed s2.Sim.acks_processed;
  Alcotest.(check int) "same drops" s1.Sim.packets_dropped s2.Sim.packets_dropped

let test_sim_losses_with_small_queue () =
  let cfg =
    Config.make ~duration:10.0 ~queue_capacity:10 ~bandwidth_mbps:10.0
      ~rtt_ms:50.0 ()
  in
  let cca = Abg_cca.Reno.create ~mss:cfg.Config.mss () in
  let stats = Sim.run cfg cca in
  Alcotest.(check bool) "drops happen" true (stats.Sim.packets_dropped > 0);
  Alcotest.(check bool) "losses detected" true (stats.Sim.loss_events > 0)

let test_sim_tiny_window_no_loss () =
  (* A fixed 2-packet window can never overflow any sane queue. *)
  let cfg = quick_config () in
  let cca = Abg_cca.Student.student5 ~mss:cfg.Config.mss () in
  let stats = Sim.run cfg cca in
  Alcotest.(check int) "no drops" 0 stats.Sim.packets_dropped;
  Alcotest.(check int) "no losses" 0 stats.Sim.loss_events

let test_sim_random_loss () =
  let cfg = { (quick_config ~duration:10.0 ()) with Config.loss_rate = 0.01 } in
  let cca = Abg_cca.Student.student5 ~mss:cfg.Config.mss () in
  let stats = Sim.run cfg cca in
  Alcotest.(check bool) "iid losses recovered" true (stats.Sim.loss_events > 0);
  Alcotest.(check bool) "still delivers" true (stats.Sim.delivered_bytes > 0.0)

let test_sim_observer_sees_acks () =
  let cfg = quick_config ~duration:2.0 () in
  let cca = Abg_cca.Reno.create ~mss:cfg.Config.mss () in
  let count = ref 0 in
  let last_time = ref neg_infinity in
  let monotone = ref true in
  let observer =
    {
      Sim.on_ack_obs =
        (fun obs ->
          incr count;
          if obs.Sim.time < !last_time then monotone := false;
          last_time := obs.Sim.time;
          Alcotest.(check bool) "positive cwnd" true (obs.Sim.cwnd > 0.0));
      on_loss_obs = (fun ~time:_ -> ());
    }
  in
  let stats = Sim.run ~observer cfg cca in
  Alcotest.(check int) "observer count matches" stats.Sim.acks_processed !count;
  Alcotest.(check bool) "times monotone" true !monotone

let test_sim_rtt_at_least_propagation () =
  let cfg = quick_config ~duration:3.0 () in
  let cca = Abg_cca.Reno.create ~mss:cfg.Config.mss () in
  let ok = ref true in
  let observer =
    {
      Sim.on_ack_obs =
        (fun obs ->
          if obs.Sim.rtt_sample < cfg.Config.rtt_prop -. 1e-9 then ok := false);
      on_loss_obs = (fun ~time:_ -> ());
    }
  in
  ignore (Sim.run ~observer cfg cca);
  Alcotest.(check bool) "rtt >= propagation" true !ok

let test_sim_jitter_does_not_stall () =
  let cfg = { (quick_config ~duration:10.0 ()) with Config.ack_jitter = 0.002 } in
  let cca = Abg_cca.Reno.create ~mss:cfg.Config.mss () in
  let stats = Sim.run cfg cca in
  let utilization =
    stats.Sim.delivered_bytes *. 8.0
    /. (cfg.Config.bandwidth_bps *. cfg.Config.duration)
  in
  Alcotest.(check bool) "jittered run still fills link" true (utilization > 0.7)

(* -- extended scenario space (cross traffic, reordering, RED, steps,
   outages) -- *)

let run_cfg cfg = Sim.run cfg (Abg_cca.Reno.create ~mss:cfg.Config.mss ())

let test_sim_cross_conservation () =
  let base = quick_config ~duration:10.0 () in
  let cfg =
    { base with Config.cross = [ Config.Constant { rate_bps = 6e6 } ] }
  in
  let stats = run_cfg cfg in
  Alcotest.(check bool) "cross traffic flows" true
    (stats.Sim.cross_delivered_bytes > 0.0);
  Alcotest.(check bool) "cca + cross never exceed the link" true
    ((stats.Sim.delivered_bytes +. stats.Sim.cross_delivered_bytes) *. 8.0
    <= cfg.Config.bandwidth_bps *. cfg.Config.duration *. 1.02);
  let alone = run_cfg base in
  Alcotest.(check bool) "competing flow squeezes the cca flow" true
    (stats.Sim.delivered_bytes < alone.Sim.delivered_bytes)

let test_sim_reordering_reorders () =
  (* A big queue rules out drops, yet held-back deliveries fire dup-ack
     runs: the loss signals can only come from actual reordering. *)
  let cfg =
    {
      (quick_config ~duration:10.0 ()) with
      Config.queue_capacity = 10_000;
      reorder_prob = 0.2;
      reorder_delay = 0.03;
    }
  in
  let stats = run_cfg cfg in
  Alcotest.(check int) "nothing dropped" 0 stats.Sim.packets_dropped;
  Alcotest.(check bool) "spurious loss signals observed" true
    (stats.Sim.loss_events > 0)

let test_sim_reorder_zero_knob_inert () =
  (* reorder_prob = 0 draws nothing even with a delay configured: the
     run is field-for-field identical to the seed simulator's. *)
  let base = quick_config ~duration:5.0 () in
  let cfg = { base with Config.reorder_delay = 0.02 } in
  Alcotest.(check bool) "bit-identical stats" true (run_cfg base = run_cfg cfg)

let test_sim_red_monotone () =
  let p = Sim.red_drop_probability ~min_th:5 ~max_th:15 ~max_p:0.1 in
  Alcotest.(check (float 0.0)) "zero below min_th" 0.0 (p 4.99);
  Alcotest.(check (float 0.0)) "certain above max_th" 1.0 (p 15.0);
  Alcotest.(check bool) "ramp caps at max_p" true (p 14.999 <= 0.1);
  let prev = ref 0.0 in
  let q = ref 0.0 in
  while !q <= 20.0 do
    let v = p !q in
    Alcotest.(check bool) "monotone in occupancy" true (v >= !prev);
    prev := v;
    q := !q +. 0.125
  done

let test_sim_red_drops_early () =
  (* With a hard capacity far beyond what the flow can build up, a
     DropTail queue admits everything — so every drop under an
     aggressive RED profile at the same capacity is probabilistic early
     dropping, not overflow. *)
  let base =
    { (quick_config ~duration:10.0 ()) with Config.queue_capacity = 10_000 }
  in
  let red =
    { base with Config.qdisc = Config.Red { min_th = 2; max_th = 20; max_p = 0.5 } }
  in
  let s_droptail = run_cfg base and s_red = run_cfg red in
  Alcotest.(check int) "droptail never overflows" 0
    s_droptail.Sim.packets_dropped;
  Alcotest.(check bool) "red sheds before the queue fills" true
    (s_red.Sim.packets_dropped > 0)

let test_sim_bandwidth_step_throttles () =
  let base = quick_config ~duration:10.0 () in
  let cfg = { base with Config.bandwidth_steps = [ (2.0, 1e6) ] } in
  let s = run_cfg cfg and s0 = run_cfg base in
  Alcotest.(check bool) "post-step ceiling binds" true
    (s.Sim.delivered_bytes < s0.Sim.delivered_bytes);
  Alcotest.(check bool) "stays within the stepped capacity" true
    (s.Sim.delivered_bytes <= Config.capacity_bytes cfg *. 1.02)

let test_sim_outages_stall () =
  let base = quick_config ~duration:10.0 () in
  let cfg = { base with Config.outage_rate = 0.4; outage_duration = 0.25 } in
  let s = run_cfg cfg and s0 = run_cfg base in
  Alcotest.(check bool) "outages cost throughput" true
    (s.Sim.delivered_bytes < s0.Sim.delivered_bytes);
  Alcotest.(check bool) "link recovers between outages" true
    (s.Sim.delivered_bytes > 0.0)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "netsim.event_queue",
      [
        Alcotest.test_case "ordering" `Quick test_event_queue_order;
        Alcotest.test_case "fifo on ties" `Quick test_event_queue_fifo_ties;
        Alcotest.test_case "popped metadata" `Quick
          test_event_queue_popped_metadata;
      ]
      @ qcheck [ prop_event_queue_sorted; prop_event_queue_reference_order ] );
    ( "netsim.config",
      [
        Alcotest.test_case "bdp" `Quick test_config_bdp;
        Alcotest.test_case "grid spans ranges" `Quick test_config_grid_spans_ranges;
        Alcotest.test_case "grid subset size" `Quick test_config_grid_subset;
        Alcotest.test_case "grid pinned n=5" `Quick test_config_grid_pinned_n5;
        Alcotest.test_case "digest covers every field" `Quick
          test_config_digest_covers_every_field;
        Alcotest.test_case "of_digest roundtrip" `Quick
          test_config_of_digest_roundtrip;
        Alcotest.test_case "rwnd above capacity" `Quick test_config_rwnd;
      ] );
    ( "netsim.sim",
      [
        Alcotest.test_case "progresses" `Quick test_sim_progresses;
        Alcotest.test_case "utilization" `Quick test_sim_utilization;
        Alcotest.test_case "never exceeds link" `Quick test_sim_never_exceeds_link;
        Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
        Alcotest.test_case "event counters" `Quick test_sim_counters;
        Alcotest.test_case "small queue loses" `Quick test_sim_losses_with_small_queue;
        Alcotest.test_case "tiny window lossless" `Quick test_sim_tiny_window_no_loss;
        Alcotest.test_case "iid loss recovery" `Quick test_sim_random_loss;
        Alcotest.test_case "observer stream" `Quick test_sim_observer_sees_acks;
        Alcotest.test_case "rtt floor" `Quick test_sim_rtt_at_least_propagation;
        Alcotest.test_case "jitter no stall" `Quick test_sim_jitter_does_not_stall;
      ] );
    ( "netsim.extended",
      [
        Alcotest.test_case "cross-traffic conservation" `Quick
          test_sim_cross_conservation;
        Alcotest.test_case "reordering reorders" `Quick
          test_sim_reordering_reorders;
        Alcotest.test_case "zero reorder knob inert" `Quick
          test_sim_reorder_zero_knob_inert;
        Alcotest.test_case "red ramp monotone" `Quick test_sim_red_monotone;
        Alcotest.test_case "red drops early" `Quick test_sim_red_drops_early;
        Alcotest.test_case "bandwidth step throttles" `Quick
          test_sim_bandwidth_step_throttles;
        Alcotest.test_case "outages stall" `Quick test_sim_outages_stall;
      ] );
  ]
