(* Tests for the adversarial scenario search: genome codec, handler
   codec, GA determinism, and the batch-backed generation evaluator's
   resume contract. *)

module Genome = Abg_fuzz.Genome
module Codec = Abg_fuzz.Codec
module Fitness = Abg_fuzz.Fitness
module Search = Abg_fuzz.Search
module Config = Abg_netsim.Config
module Rng = Abg_util.Rng

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "abagnale-fuzz-test.%d.%d" (Unix.getpid ()) !dir_counter)
  in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm_rf dir;
  Sys.mkdir dir 0o755;
  dir

(* -- genome -- *)

let test_genome_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    let g = Genome.random rng in
    Alcotest.(check int) "gene count" Genome.length (Array.length g);
    Array.iteri
      (fun i v ->
        let spec = Genome.genes.(i) in
        Alcotest.(check bool)
          (spec.Genome.name ^ " in box")
          true
          (v >= spec.Genome.lo && v <= spec.Genome.hi))
      g
  done

let test_genome_roundtrip () =
  let rng = Rng.create 6 in
  for _ = 1 to 50 do
    let g = Genome.random rng in
    match Genome.decode (Genome.encode g) with
    | None -> Alcotest.fail "genome did not decode"
    | Some g' ->
        Alcotest.(check bool) "bit-exact roundtrip" true (g = g');
        Alcotest.(check string) "stable fingerprint" (Genome.fingerprint g)
          (Genome.fingerprint g')
  done;
  Alcotest.(check bool) "garbage rejected" true (Genome.decode "zap" = None);
  Alcotest.(check bool) "wrong arity rejected" true
    (Genome.decode "0x1p+0;0x1p+0" = None)

let test_genome_config_valid () =
  (* Every corner of the gene box must decode to a runnable scenario. *)
  let rng = Rng.create 7 in
  for i = 0 to 49 do
    let g =
      if i = 0 then Array.map (fun s -> s.Genome.lo) Genome.genes
      else if i = 1 then Array.map (fun s -> s.Genome.hi) Genome.genes
      else Genome.random rng
    in
    let cfg = Genome.to_config ~duration:2.0 ~seed:9 g in
    Alcotest.(check bool) "positive bandwidth" true (cfg.Config.bandwidth_bps > 0.0);
    Alcotest.(check bool) "positive queue" true (cfg.Config.queue_capacity > 0);
    Alcotest.(check bool) "digest roundtrips" true
      (match Config.of_digest (Config.digest cfg) with
      | Some cfg' -> cfg = cfg'
      | None -> false);
    let stats = Abg_netsim.Sim.run cfg (Abg_cca.Reno.create ~mss:cfg.Config.mss ()) in
    Alcotest.(check bool) "simulates" true (stats.Abg_netsim.Sim.final_time > 0.0)
  done

let test_genome_mutation_in_bounds () =
  let rng = Rng.create 8 in
  let g = Genome.random rng in
  for _ = 1 to 50 do
    let m = Genome.mutate rng g in
    Array.iteri
      (fun i v ->
        let spec = Genome.genes.(i) in
        Alcotest.(check bool) "mutant stays in box" true
          (v >= spec.Genome.lo && v <= spec.Genome.hi))
      m
  done

(* -- handler codec -- *)

let sample_handlers =
  let open Abg_dsl.Expr in
  let sig0 = List.hd Abg_dsl.Signal.all in
  let mac0 = List.hd Abg_dsl.Macro.all in
  [
    Cwnd;
    Const 0.1;
    Const (-3.25e-7);
    Hole 4;
    Signal sig0;
    Macro mac0;
    Add (Cwnd, Mul (Const 2.0, Signal sig0));
    Ite (Lt (Signal sig0, Macro mac0), Add (Cwnd, Macro mac0), Macro mac0);
    Ite (Mod_eq (Cwnd, Const 2.0), Cbrt (Cube (Sub (Cwnd, Const 1.0))),
         Div (Cwnd, Const 2.0));
    Ite (Gt (Cwnd, Const 100.0), Cwnd, Add (Cwnd, Const 1.0));
  ]

let test_codec_roundtrip () =
  List.iter
    (fun e ->
      match Codec.decode_num (Codec.encode_num e) with
      | None -> Alcotest.fail ("no parse: " ^ Codec.encode_num e)
      | Some e' ->
          Alcotest.(check bool)
            ("roundtrip: " ^ Codec.encode_num e)
            true
            (Abg_dsl.Expr.equal_num e e'))
    sample_handlers

let test_codec_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejected: " ^ s) true (Codec.decode_num s = None))
    [
      ""; "("; ")"; "(add cwnd)"; "(add cwnd cwnd cwnd)"; "sig:nope";
      "mac:nope"; "const:xyz"; "hole:"; "(frob cwnd cwnd)"; "cwnd cwnd";
      "(lt cwnd cwnd)" (* boolean at the top level is not a num *);
    ]

(* -- search determinism -- *)

(* A cheap deterministic surrogate fitness: no simulator, so these tests
   isolate the GA itself. *)
let surrogate ~gen:_ genomes =
  Array.map (fun g -> g.(0) +. (2.0 *. g.(2)) -. g.(3)) genomes

let test_search_deterministic () =
  let params = { Search.default_params with Search.generations = 5; pop = 12 } in
  let a = Search.run ~params ~evaluate:surrogate in
  let b = Search.run ~params ~evaluate:surrogate in
  Alcotest.(check string) "same champion"
    (Genome.fingerprint a.Search.champion)
    (Genome.fingerprint b.Search.champion);
  Alcotest.(check bool) "same fitness" true
    (a.Search.champion_fitness = b.Search.champion_fitness);
  Alcotest.(check (list (float 0.0))) "same history"
    (List.map (fun s -> s.Search.best) a.Search.history)
    (List.map (fun s -> s.Search.best) b.Search.history)

let test_search_seed_matters () =
  let params = { Search.default_params with Search.generations = 3; pop = 8 } in
  let a = Search.run ~params ~evaluate:surrogate in
  let b =
    Search.run
      ~params:{ params with Search.seed = params.Search.seed + 1 }
      ~evaluate:surrogate
  in
  Alcotest.(check bool) "different seed, different search" true
    (Genome.fingerprint a.Search.champion <> Genome.fingerprint b.Search.champion
    || a.Search.champion_fitness <> b.Search.champion_fitness)

let test_search_improves () =
  (* On a smooth surrogate, five generations must not regress and should
     beat a random population's best. *)
  let params = { Search.default_params with Search.generations = 6; pop = 12 } in
  let r = Search.run ~params ~evaluate:surrogate in
  let bests = List.map (fun s -> s.Search.best) r.Search.history in
  let first = List.hd bests in
  Alcotest.(check bool) "monotone champion" true
    (List.for_all (fun b -> b <= r.Search.champion_fitness) bests);
  Alcotest.(check bool) "evolution helps" true
    (r.Search.champion_fitness >= first)

let test_search_next_generation_pure () =
  let params = { Search.default_params with Search.pop = 10 } in
  let pop = Search.initial_population params in
  let fit = surrogate ~gen:0 pop in
  let a = Search.next_generation params ~gen:0 pop fit in
  let b = Search.next_generation params ~gen:0 pop fit in
  Alcotest.(check bool) "pure function of (params, pop, fitness)" true (a = b);
  (* elites survive verbatim, in rank order *)
  let ranked =
    List.sort
      (fun i j -> compare fit.(j) fit.(i))
      (List.init (Array.length pop) Fun.id)
  in
  Alcotest.(check bool) "elite carried over" true
    (a.(0) = pop.(List.hd ranked))

(* -- fitness functions -- *)

let cheap_cfg = Config.make ~duration:2.0 ~bandwidth_mbps:8.0 ~rtt_ms:30.0 ()

let test_fitness_divergence () =
  let spec =
    { Fitness.kind = Fitness.Divergence; cca = "reno"; cca_b = Some "cubic";
      handler = None }
  in
  let v = Fitness.evaluate spec cheap_cfg in
  Alcotest.(check bool) "finite and nonnegative" true (Float.is_finite v && v >= 0.0);
  let same =
    Fitness.evaluate { spec with Fitness.cca_b = Some "reno" } cheap_cfg
  in
  Alcotest.(check (float 1e-9)) "self-divergence is zero" 0.0 same

let test_fitness_throughput () =
  let spec =
    { Fitness.kind = Fitness.Throughput; cca = "reno"; cca_b = None;
      handler = None }
  in
  let v = Fitness.evaluate spec cheap_cfg in
  Alcotest.(check bool) "starvation in [0,1]" true (v >= 0.0 && v <= 1.0);
  let starved =
    Fitness.evaluate spec
      { cheap_cfg with Config.outage_rate = 1.0; outage_duration = 0.5 }
  in
  Alcotest.(check bool) "outages starve harder" true (starved > v)

let test_fitness_counterexample () =
  let spec =
    { Fitness.kind = Fitness.Counterexample; cca = "reno"; cca_b = None;
      handler = Some Abg_dsl.Expr.Cwnd (* frozen window: clearly not reno *) }
  in
  let v = Fitness.evaluate spec cheap_cfg in
  Alcotest.(check bool) "wrong handler scores positive" true (v > 0.0);
  Alcotest.check_raises "incoherent spec rejected"
    (Failure "fuzz: counterexample fitness needs a handler") (fun () ->
      ignore (Fitness.evaluate { spec with Fitness.handler = None } cheap_cfg))

(* -- batch evaluation: resume contract -- *)

let quiet_settings =
  { Abg_batch.Runner.default_settings with Abg_batch.Runner.verbose = false }

let test_fuzz_batch_resume_identical () =
  let dir = fresh_dir () in
  let spec =
    { Abg_batch.Fuzz_batch.fitness = Fitness.Throughput; cca = "reno";
      cca_b = None; handler = None; duration = 2.0; scenario_seed = 21 }
  in
  let rng = Rng.create 31 in
  let genomes = Array.init 6 (fun _ -> Genome.random rng) in
  (* duplicates must collapse to one job and still score *)
  genomes.(5) <- Array.copy genomes.(0);
  let first =
    Abg_batch.Fuzz_batch.evaluate ~dir ~settings:quiet_settings spec ~gen:0
      genomes
  in
  let again =
    Abg_batch.Fuzz_batch.evaluate ~dir ~settings:quiet_settings spec ~gen:0
      genomes
  in
  Alcotest.(check bool) "settled generation re-reads identically" true
    (first = again);
  Alcotest.(check (float 0.0)) "duplicate genomes share a score" first.(0)
    first.(5);
  Alcotest.(check bool) "scores are real" true
    (Array.for_all Float.is_finite first);
  (* a fresh directory evaluates to the same values: fitness is a pure
     function of (spec, genome), not of the run directory *)
  let fresh =
    Abg_batch.Fuzz_batch.evaluate ~dir:(fresh_dir ()) ~settings:quiet_settings
      spec ~gen:0 genomes
  in
  Alcotest.(check bool) "directory-independent" true (first = fresh)

let suites =
  [
    ( "fuzz.genome",
      [
        Alcotest.test_case "bounds" `Quick test_genome_bounds;
        Alcotest.test_case "roundtrip" `Quick test_genome_roundtrip;
        Alcotest.test_case "configs valid" `Quick test_genome_config_valid;
        Alcotest.test_case "mutation in bounds" `Quick
          test_genome_mutation_in_bounds;
      ] );
    ( "fuzz.codec",
      [
        Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
      ] );
    ( "fuzz.search",
      [
        Alcotest.test_case "deterministic" `Quick test_search_deterministic;
        Alcotest.test_case "seed matters" `Quick test_search_seed_matters;
        Alcotest.test_case "improves" `Quick test_search_improves;
        Alcotest.test_case "next generation pure" `Quick
          test_search_next_generation_pure;
      ] );
    ( "fuzz.fitness",
      [
        Alcotest.test_case "divergence" `Quick test_fitness_divergence;
        Alcotest.test_case "throughput" `Quick test_fitness_throughput;
        Alcotest.test_case "counterexample" `Quick test_fitness_counterexample;
      ] );
    ( "fuzz.batch",
      [
        Alcotest.test_case "resume identical" `Quick
          test_fuzz_batch_resume_identical;
      ] );
  ]
