(* Tests for trace collection, segmentation, sampling, noise and IO. *)

let collect_reno () =
  let cfg =
    Abg_netsim.Config.make ~duration:10.0 ~bandwidth_mbps:10.0 ~rtt_ms:50.0 ()
  in
  Abg_trace.Trace.collect cfg ~name:"reno" (fun ~mss () ->
      Abg_cca.Reno.create ~mss ())

let trace = lazy (collect_reno ())

let test_collect_nonempty () =
  let t = Lazy.force trace in
  Alcotest.(check bool) "records" true (Abg_trace.Trace.length t > 1000);
  Alcotest.(check bool) "losses" true (Array.length t.Abg_trace.Trace.loss_times > 0)

let test_records_monotone_time () =
  let t = Lazy.force trace in
  let ok = ref true in
  Array.iteri
    (fun i r ->
      if i > 0 then begin
        let prev = t.Abg_trace.Trace.records.(i - 1) in
        if r.Abg_trace.Record.time < prev.Abg_trace.Record.time then ok := false
      end)
    t.Abg_trace.Trace.records;
  Alcotest.(check bool) "monotone" true !ok

let test_records_signal_sanity () =
  let t = Lazy.force trace in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "min <= rtt" true
        (r.Abg_trace.Record.min_rtt <= r.Abg_trace.Record.rtt +. 1e-9);
      Alcotest.(check bool) "rtt <= max" true
        (r.Abg_trace.Record.rtt <= r.Abg_trace.Record.max_rtt +. 1e-9);
      Alcotest.(check bool) "rate positive" true (r.Abg_trace.Record.ack_rate > 0.0);
      Alcotest.(check bool) "tsl nonneg" true
        (r.Abg_trace.Record.time_since_loss >= 0.0))
    t.Abg_trace.Trace.records

let test_record_env_roundtrip () =
  let t = Lazy.force trace in
  let r = t.Abg_trace.Trace.records.(100) in
  let env = Abg_trace.Record.to_env r ~cwnd:9999.0 in
  Alcotest.(check (float 1e-9)) "cwnd override" 9999.0 env.Abg_dsl.Env.cwnd;
  Alcotest.(check (float 1e-9)) "rtt copied" r.Abg_trace.Record.rtt env.Abg_dsl.Env.rtt;
  (* load_env writes the same values in place. *)
  let scratch = Abg_dsl.Env.copy Abg_dsl.Env.example in
  Abg_trace.Record.load_env scratch r ~cwnd:9999.0;
  Alcotest.(check (float 1e-9)) "load_env rtt" env.Abg_dsl.Env.rtt scratch.Abg_dsl.Env.rtt;
  Alcotest.(check (float 1e-9)) "load_env rate" env.Abg_dsl.Env.ack_rate
    scratch.Abg_dsl.Env.ack_rate

(* -- Segmentation -- *)

let test_split_counts () =
  let t = Lazy.force trace in
  let segs = Abg_trace.Segmentation.split ~min_length:10 t in
  Alcotest.(check bool) "at least one segment" true (List.length segs >= 1);
  Alcotest.(check bool) "bounded by losses+1" true
    (List.length segs <= Array.length t.Abg_trace.Trace.loss_times + 1)

let test_split_min_length () =
  let t = Lazy.force trace in
  List.iter
    (fun seg ->
      Alcotest.(check bool) "length floor" true
        (Abg_trace.Segmentation.length seg >= 50))
    (Abg_trace.Segmentation.split ~min_length:50 t)

let test_split_skip_initial () =
  let t = Lazy.force trace in
  let all = Abg_trace.Segmentation.split ~min_length:10 t in
  let skipped = Abg_trace.Segmentation.split ~min_length:10 ~skip_initial:true t in
  Alcotest.(check bool) "one fewer (slow start dropped)" true
    (List.length skipped < List.length all
    || Array.length t.Abg_trace.Trace.loss_times = 0)

let test_split_respects_cuts () =
  let t = Lazy.force trace in
  let cuts = t.Abg_trace.Trace.loss_times in
  List.iter
    (fun seg ->
      let times = Abg_trace.Segmentation.times seg in
      let t0 = seg.Abg_trace.Segmentation.start_time in
      let t1 = t0 +. times.(Array.length times - 1) in
      (* No loss strictly inside the segment span. *)
      Array.iter
        (fun loss ->
          Alcotest.(check bool) "no loss inside" true
            (loss <= t0 +. 1e-9 || loss >= t1 -. 1e-9))
        cuts)
    (Abg_trace.Segmentation.split ~min_length:10 t)

let test_infer_loss_times () =
  let t = Lazy.force trace in
  let inferred = Abg_trace.Segmentation.infer_loss_times t in
  Alcotest.(check bool) "finds drops" true (Array.length inferred > 0)

let test_thin_preserves_acked_volume () =
  let t = Lazy.force trace in
  let seg = List.hd (Abg_trace.Segmentation.split ~min_length:100 t) in
  let sum records =
    Array.fold_left (fun acc r -> acc +. r.Abg_trace.Record.acked_bytes) 0.0 records
  in
  let thinned = Abg_trace.Segmentation.thin ~max_records:50 seg in
  Alcotest.(check bool) "record budget" true
    (Abg_trace.Segmentation.length thinned <= 50);
  Alcotest.(check (float 1.0)) "acked volume conserved"
    (sum seg.Abg_trace.Segmentation.records)
    (sum thinned.Abg_trace.Segmentation.records)

let test_thin_short_segment_untouched () =
  let t = Lazy.force trace in
  let seg = List.hd (Abg_trace.Segmentation.split ~min_length:30 t) in
  let thinned = Abg_trace.Segmentation.thin ~max_records:100000 seg in
  Alcotest.(check int) "unchanged" (Abg_trace.Segmentation.length seg)
    (Abg_trace.Segmentation.length thinned)

(* -- Sampling -- *)

let test_sampling_budget () =
  let t = Lazy.force trace in
  let segs = Abg_trace.Segmentation.split ~min_length:10 t in
  let rng = Abg_util.Rng.create 5 in
  let distance a b =
    Abg_distance.Metric.compute Abg_distance.Metric.Euclidean ~truth:a ~candidate:b
  in
  let chosen = Abg_trace.Sampling.select rng ~distance ~n:2 segs in
  Alcotest.(check bool) "within budget" true (List.length chosen <= 2);
  Alcotest.(check bool) "nonempty" true (chosen <> [])

let test_sampling_small_pool_passthrough () =
  let t = Lazy.force trace in
  let segs = Abg_trace.Segmentation.split ~min_length:10 t in
  let rng = Abg_util.Rng.create 5 in
  let distance _ _ = 0.0 in
  let chosen = Abg_trace.Sampling.select rng ~distance ~n:1000 segs in
  Alcotest.(check int) "pool returned whole" (List.length segs) (List.length chosen)

(* -- Noise -- *)

let test_noise_observation () =
  let t = Lazy.force trace in
  let rng = Abg_util.Rng.create 6 in
  let noisy = Abg_trace.Noise.observation_noise rng ~stddev:0.1 t in
  Alcotest.(check int) "same length" (Abg_trace.Trace.length t)
    (Abg_trace.Trace.length noisy);
  let changed = ref false in
  Array.iteri
    (fun i r ->
      let orig = t.Abg_trace.Trace.records.(i) in
      Alcotest.(check bool) "positive" true (r.Abg_trace.Record.in_flight >= 0.0);
      if r.Abg_trace.Record.in_flight <> orig.Abg_trace.Record.in_flight then
        changed := true)
    noisy.Abg_trace.Trace.records;
  Alcotest.(check bool) "noise applied" true !changed

let test_noise_subsample () =
  let t = Lazy.force trace in
  let rng = Abg_util.Rng.create 7 in
  let sub = Abg_trace.Noise.subsample rng ~keep:0.5 t in
  let frac =
    float_of_int (Abg_trace.Trace.length sub)
    /. float_of_int (Abg_trace.Trace.length t)
  in
  Alcotest.(check bool) "roughly half" true (frac > 0.4 && frac < 0.6)

let test_noise_time_jitter_monotone () =
  let t = Lazy.force trace in
  let rng = Abg_util.Rng.create 8 in
  let jittered = Abg_trace.Noise.time_jitter rng ~stddev:0.01 t in
  let ok = ref true in
  Array.iteri
    (fun i r ->
      if i > 0 then begin
        let prev = jittered.Abg_trace.Trace.records.(i - 1) in
        if r.Abg_trace.Record.time < prev.Abg_trace.Record.time then ok := false
      end)
    jittered.Abg_trace.Trace.records;
  Alcotest.(check bool) "still monotone" true !ok

let test_noise_spurious_losses () =
  let t = Lazy.force trace in
  let rng = Abg_util.Rng.create 9 in
  let spurious = Abg_trace.Noise.spurious_losses rng ~rate:0.01 t in
  Alcotest.(check bool) "more losses" true
    (Array.length spurious.Abg_trace.Trace.loss_times
    > Array.length t.Abg_trace.Trace.loss_times)

(* -- Process-wide trace store -- *)

let reno_ctor ~mss () = Abg_cca.Reno.create ~mss ()

let test_store_second_call_hits () =
  Abg_trace.Trace.store_clear ();
  let first = Abg_trace.Trace.collect_suite ~duration:2.0 ~n:2 ~name:"reno" reno_ctor in
  let _, misses_after_first = Abg_trace.Trace.store_stats () in
  let second = Abg_trace.Trace.collect_suite ~duration:2.0 ~n:2 ~name:"reno" reno_ctor in
  let hits, misses = Abg_trace.Trace.store_stats () in
  Alcotest.(check int) "no new misses" misses_after_first misses;
  Alcotest.(check bool) "hits recorded" true (hits >= List.length second);
  (* A hit returns the stored trace itself, not a re-simulation. *)
  List.iter2
    (fun a b -> Alcotest.(check bool) "physically equal" true (a == b))
    first second

let test_store_parallel_matches_sequential () =
  (* Parallel, cached collection must be bit-identical to a plain
     sequential sweep of the same grid. *)
  let parallel =
    Abg_trace.Trace.collect_suite ~duration:2.0 ~n:2 ~name:"reno" reno_ctor
  in
  let sequential =
    Abg_netsim.Config.testbed_grid ~duration:2.0 ~n:2 ()
    |> List.map (fun cfg -> Abg_trace.Trace.collect cfg ~name:"reno" reno_ctor)
  in
  Alcotest.(check int) "same suite size" (List.length sequential)
    (List.length parallel);
  List.iter2
    (fun a b ->
      Alcotest.(check int) "same length" (Abg_trace.Trace.length a)
        (Abg_trace.Trace.length b);
      Alcotest.(check bool) "records bit-identical" true
        (a.Abg_trace.Trace.records = b.Abg_trace.Trace.records);
      Alcotest.(check bool) "losses bit-identical" true
        (a.Abg_trace.Trace.loss_times = b.Abg_trace.Trace.loss_times))
    sequential parallel

let test_store_uncached_is_fresh () =
  let a =
    Abg_trace.Trace.collect_suite ~duration:2.0 ~n:2 ~cache:false ~name:"reno"
      reno_ctor
  in
  let b =
    Abg_trace.Trace.collect_suite ~duration:2.0 ~n:2 ~cache:false ~name:"reno"
      reno_ctor
  in
  List.iter2
    (fun x y ->
      Alcotest.(check bool) "fresh traces" true (x != y);
      Alcotest.(check bool) "still deterministic" true
        (x.Abg_trace.Trace.records = y.Abg_trace.Trace.records))
    a b

(* -- IO -- *)

let test_io_roundtrip () =
  let t = Lazy.force trace in
  let path = Filename.temp_file "abagnale" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Abg_trace.Io.save path t;
      let t' = Abg_trace.Io.load path in
      Alcotest.(check string) "cca name" t.Abg_trace.Trace.cca_name
        t'.Abg_trace.Trace.cca_name;
      Alcotest.(check int) "record count" (Abg_trace.Trace.length t)
        (Abg_trace.Trace.length t');
      Alcotest.(check int) "loss count"
        (Array.length t.Abg_trace.Trace.loss_times)
        (Array.length t'.Abg_trace.Trace.loss_times);
      let r = t.Abg_trace.Trace.records.(42) in
      let r' = t'.Abg_trace.Trace.records.(42) in
      Alcotest.(check (float 1e-6)) "rtt preserved" r.Abg_trace.Record.rtt
        r'.Abg_trace.Record.rtt;
      Alcotest.(check (float 1e-3)) "cwnd preserved" r.Abg_trace.Record.cwnd
        r'.Abg_trace.Record.cwnd)

let test_io_record_line_roundtrip () =
  let t = Lazy.force trace in
  let r = t.Abg_trace.Trace.records.(7) in
  let r' = Abg_trace.Io.record_of_line (Abg_trace.Io.record_to_line r) in
  Alcotest.(check (float 1e-6)) "time" r.Abg_trace.Record.time r'.Abg_trace.Record.time;
  Alcotest.(check (float 1e-1)) "ack_rate" r.Abg_trace.Record.ack_rate
    r'.Abg_trace.Record.ack_rate

let test_io_malformed_rejected () =
  Alcotest.check_raises "malformed line"
    (Invalid_argument "Io.record_of_line: malformed line: not a record")
    (fun () -> ignore (Abg_trace.Io.record_of_line "not a record"))

let test_io_malformed_carries_lineno () =
  (* load/of_string report the 1-based source line of a bad record. *)
  let content =
    "# abagnale-trace v1\n# cca: reno\n# scenario: s\n# losses: \n\
     # columns: c\nbogus record\n"
  in
  Alcotest.check_raises "line number in error"
    (Invalid_argument "Io.record_of_line: line 6: malformed line: bogus record")
    (fun () -> ignore (Abg_trace.Io.of_string content))

let test_io_string_roundtrip () =
  let t = Lazy.force trace in
  let s = Abg_trace.Io.to_string t in
  let t' = Abg_trace.Io.of_string s in
  (* Byte-stable: serializing the parse reproduces the exact content
     (the batch store's determinism contract rides on this). *)
  Alcotest.(check string) "to_string/of_string byte-stable" s
    (Abg_trace.Io.to_string t')

let test_io_tolerates_crlf_and_blank_lines () =
  let t = Lazy.force trace in
  let clean = Abg_trace.Io.to_string t in
  (* Re-serialize with CRLF endings plus blank and whitespace-only lines
     sprinkled in, as Windows tooling or hand editing would leave them. *)
  let mangled =
    String.split_on_char '\n' clean
    |> List.concat_map (fun line -> [ line ^ "\r"; ""; "  \r" ])
    |> String.concat "\n"
  in
  let t' = Abg_trace.Io.of_string mangled in
  Alcotest.(check string) "mangled file parses identically" clean
    (Abg_trace.Io.to_string t');
  (* And through the file path too. *)
  let path = Filename.temp_file "abagnale" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc mangled;
      close_out oc;
      Alcotest.(check string) "load tolerates CRLF" clean
        (Abg_trace.Io.to_string (Abg_trace.Io.load path)))

(* Round-trip every float a record can hold, including the
   non-finite values a degenerate trace produces (nan gradients,
   infinite rates): parse(print(r)) must re-print to the same bytes. *)
let gen_field =
  QCheck.Gen.oneof
    [
      QCheck.Gen.float;
      QCheck.Gen.oneofl
        [ nan; infinity; neg_infinity; 0.0; -0.0; 1e-308; 4e-324;
          1.7976931348623157e308; 0.1; 1.0 /. 3.0 ];
    ]

let arb_record =
  QCheck.make
    ~print:(fun r -> Abg_trace.Io.record_to_line r)
    QCheck.Gen.(
      array_size (return 13) gen_field >|= fun f ->
      {
        Abg_trace.Record.time = f.(0); cwnd = f.(1); in_flight = f.(2);
        acked_bytes = f.(3); rtt = f.(4); min_rtt = f.(5); max_rtt = f.(6);
        ack_rate = f.(7); rtt_gradient = f.(8); delay_gradient = f.(9);
        time_since_loss = f.(10); wmax = f.(11); mss = f.(12);
      })

let prop_io_record_line_roundtrip =
  QCheck.Test.make ~name:"record line round-trips nan/inf losslessly"
    ~count:500 arb_record (fun r ->
      let line = Abg_trace.Io.record_to_line r in
      Abg_trace.Io.record_to_line (Abg_trace.Io.record_of_line line) = line)

(* -- Noise identity properties -- *)

let test_noise_zero_stddev_is_identity () =
  let t = Lazy.force trace in
  let rng = Abg_util.Rng.create 11 in
  let noisy = Abg_trace.Noise.observation_noise rng ~stddev:0.0 t in
  Alcotest.(check string) "stddev 0 is bit-identical"
    (Abg_trace.Io.to_string t)
    (Abg_trace.Io.to_string noisy)

let test_noise_keep_all_is_identity () =
  let t = Lazy.force trace in
  let rng = Abg_util.Rng.create 12 in
  let sub = Abg_trace.Noise.subsample rng ~keep:1.0 t in
  Alcotest.(check string) "keep 1.0 is bit-identical"
    (Abg_trace.Io.to_string t)
    (Abg_trace.Io.to_string sub)

let suites =
  [
    ( "trace.collect",
      [
        Alcotest.test_case "nonempty" `Quick test_collect_nonempty;
        Alcotest.test_case "monotone time" `Quick test_records_monotone_time;
        Alcotest.test_case "signal sanity" `Quick test_records_signal_sanity;
        Alcotest.test_case "env roundtrip" `Quick test_record_env_roundtrip;
      ] );
    ( "trace.segmentation",
      [
        Alcotest.test_case "split counts" `Quick test_split_counts;
        Alcotest.test_case "min length" `Quick test_split_min_length;
        Alcotest.test_case "skip initial" `Quick test_split_skip_initial;
        Alcotest.test_case "respects cuts" `Quick test_split_respects_cuts;
        Alcotest.test_case "infer losses" `Quick test_infer_loss_times;
        Alcotest.test_case "thin conserves acked" `Quick test_thin_preserves_acked_volume;
        Alcotest.test_case "thin no-op" `Quick test_thin_short_segment_untouched;
      ] );
    ( "trace.sampling",
      [
        Alcotest.test_case "budget" `Quick test_sampling_budget;
        Alcotest.test_case "small pool" `Quick test_sampling_small_pool_passthrough;
      ] );
    ( "trace.noise",
      [
        Alcotest.test_case "observation noise" `Quick test_noise_observation;
        Alcotest.test_case "zero stddev identity" `Quick
          test_noise_zero_stddev_is_identity;
        Alcotest.test_case "subsample" `Quick test_noise_subsample;
        Alcotest.test_case "keep-all identity" `Quick
          test_noise_keep_all_is_identity;
        Alcotest.test_case "time jitter monotone" `Quick test_noise_time_jitter_monotone;
        Alcotest.test_case "spurious losses" `Quick test_noise_spurious_losses;
      ] );
    ( "trace.store",
      [
        Alcotest.test_case "second call hits" `Quick test_store_second_call_hits;
        Alcotest.test_case "parallel = sequential" `Quick
          test_store_parallel_matches_sequential;
        Alcotest.test_case "uncached is fresh" `Quick test_store_uncached_is_fresh;
      ] );
    ( "trace.io",
      [
        Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
        Alcotest.test_case "record line" `Quick test_io_record_line_roundtrip;
        Alcotest.test_case "malformed" `Quick test_io_malformed_rejected;
        Alcotest.test_case "malformed lineno" `Quick
          test_io_malformed_carries_lineno;
        Alcotest.test_case "string roundtrip" `Quick test_io_string_roundtrip;
        Alcotest.test_case "crlf + blank lines" `Quick
          test_io_tolerates_crlf_and_blank_lines;
      ]
      @ List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [ prop_io_record_line_roundtrip ] );
  ]
